#include "core/driver.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "common/glob.h"
#include "core/exchange.h"
#include "core/stats_index.h"
#include "core/worker.h"
#include "engine/aggregate.h"
#include "engine/chunk_serde.h"

namespace lambada::core {

Driver::Driver(cloud::Cloud* cloud, DriverOptions options)
    : cloud_(cloud), options_(std::move(options)) {}

Status Driver::Install() {
  RETURN_NOT_OK(cloud_->s3().CreateBucket(options_.system_bucket));
  RETURN_NOT_OK(cloud_->sqs().CreateQueue(options_.result_queue));
  RETURN_NOT_OK(cloud_->ddb().CreateTable("lambada-meta"));
  ExchangeSpec defaults;
  defaults.bucket_prefix = options_.exchange_bucket_prefix;
  defaults.num_buckets = options_.exchange_buckets;
  RETURN_NOT_OK(CreateExchangeBuckets(&cloud_->s3(), defaults));
  StatsIndex stats(&cloud_->ddb());
  RETURN_NOT_OK(stats.CreateTable());
  installed_ = true;
  return Status::OK();
}

Status Driver::EnsureFunction(int memory_mib) {
  std::string name =
      options_.function_prefix + std::to_string(memory_mib);
  cloud::FunctionConfig fn;
  fn.name = name;
  fn.memory_mib = memory_mib;
  fn.timeout_s = 900.0;
  fn.handler = MakeWorkerHandler(options_.worker_exec);
  return cloud_->faas().CreateFunction(std::move(fn));
}

void Driver::ResetWarm(int memory_mib) {
  cloud_->faas().ResetWarmPool(options_.function_prefix +
                               std::to_string(memory_mib));
}

sim::Async<Status> Driver::InvokeOne(const std::string& function,
                                     std::string payload) {
  double backoff = 0.05;
  for (int attempt = 0;; ++attempt) {
    Status s = co_await cloud_->faas().Invoke(
        cloud_->driver_invoker_profile(), &cloud_->driver_rng(), function,
        payload);
    if (s.ok() || !s.IsRetriable() || attempt >= options_.invoke_retries) {
      co_return s;
    }
    co_await sim::Sleep(&cloud_->sim(),
                        backoff * (0.5 + cloud_->driver_rng().NextDouble()));
    backoff *= 2;
  }
}

sim::Async<Status> Driver::InvokeWorkers(
    std::vector<InvocationPayload> payloads, const std::string& function) {
  // Two-level tree (Section 4.2): the driver invokes ~sqrt(P) first-
  // generation workers; each carries the inputs of its second generation.
  std::vector<InvocationPayload> first_gen;
  if (options_.two_level_invocation && payloads.size() > 4) {
    size_t group =
        static_cast<size_t>(std::ceil(std::sqrt(payloads.size())));
    for (size_t start = 0; start < payloads.size(); start += group) {
      InvocationPayload leader = payloads[start];
      for (size_t i = start + 1; i < std::min(start + group, payloads.size());
           ++i) {
        leader.to_invoke.push_back(payloads[i].self);
      }
      first_gen.push_back(std::move(leader));
    }
  } else {
    first_gen = std::move(payloads);
  }

  // Fan the Invoke calls over a bounded pool of invocation threads.
  auto* sim = &cloud_->sim();
  auto gate =
      std::make_shared<sim::Semaphore>(sim, options_.invoke_threads);
  auto first_error = std::make_shared<Status>(Status::OK());
  std::vector<sim::Async<void>> calls;
  calls.reserve(first_gen.size());
  for (auto& p : first_gen) {
    calls.push_back([](Driver* self, std::shared_ptr<sim::Semaphore> g,
                       std::shared_ptr<Status> err, std::string fn,
                       std::string payload) -> sim::Async<void> {
      co_await g->Acquire();
      Status s = co_await self->InvokeOne(fn, std::move(payload));
      if (!s.ok() && err->ok()) *err = s;
      g->Release();
    }(this, gate, first_error, function, p.Serialize()));
  }
  co_await sim::WhenAllVoid(sim, std::move(calls));
  co_return *first_error;
}

sim::Async<Result<QueryReport>> Driver::Run(const Query& query,
                                            const RunOptions& options) {
  if (!installed_) {
    CO_RETURN_NOT_OK(Install());
  }
  CO_RETURN_NOT_OK(EnsureFunction(options.memory_mib));
  const std::string function =
      options_.function_prefix + std::to_string(options.memory_mib);
  auto* sim = &cloud_->sim();
  const double t_start = sim->Now();
  const cloud::CostSnapshot cost_before = cloud_->ledger().Snapshot();
  const size_t metrics_before = cloud_->faas().completed_metrics().size();

  // ---- Compile. ----
  auto physical = PlanQuery(query, options.tuning);
  if (!physical.ok()) co_return physical.status();
  std::string query_id = "q" + std::to_string(next_query_id_++);
  // Stamp exchange instances with a unique id and ensure their buckets. A
  // join fragment carries two: the probe-side kExchange op and the build
  // side's exchange inside the JoinSpec.
  for (size_t i = 0; i < physical->fragment.ops.size(); ++i) {
    auto& op = physical->fragment.ops[i];
    if (op.kind == PlanOp::Kind::kExchange) {
      op.exchange->exchange_id = query_id + "-x" + std::to_string(i);
      CO_RETURN_NOT_OK(CreateExchangeBuckets(&cloud_->s3(), *op.exchange));
    } else if (op.kind == PlanOp::Kind::kJoin) {
      op.join->build_exchange.exchange_id =
          query_id + "-xb" + std::to_string(i);
      CO_RETURN_NOT_OK(
          CreateExchangeBuckets(&cloud_->s3(), op.join->build_exchange));
    }
  }

  // ---- Expand the input glob. ----
  std::string bucket, key_pattern;
  if (!ParseS3Uri(physical->pattern, &bucket, &key_pattern)) {
    co_return Status::Invalid("bad input pattern: " + physical->pattern);
  }
  cloud::S3Client client(&cloud_->s3(), cloud_->driver_net());
  auto listing =
      co_await client.List(bucket, GlobLiteralPrefix(key_pattern));
  if (!listing.ok()) co_return listing.status();
  std::vector<engine::FileRef> files;
  std::map<std::string, int64_t> file_sizes;  // Virtual (scaled) bytes.
  for (const auto& obj : *listing) {
    if (GlobMatch(key_pattern, obj.key)) {
      files.push_back(engine::FileRef{bucket, obj.key});
      file_sizes[obj.key] = obj.size;
    }
  }
  if (files.empty()) {
    co_return Status::NotFound("no input files match " + physical->pattern);
  }
  if (options.use_stats_index && physical->fragment.scan_filter != nullptr) {
    // Section 5.3 extension: central min/max index lets the driver skip
    // files before any worker is started.
    StatsIndex stats(&cloud_->ddb());
    std::string dataset = bucket + "/" + GlobLiteralPrefix(key_pattern);
    std::vector<std::string> keys;
    keys.reserve(files.size());
    for (const auto& f : files) keys.push_back(f.key);
    auto kept = co_await stats.PruneFiles(cloud_->driver_net(), dataset,
                                          std::move(keys),
                                          physical->fragment.scan_filter);
    if (kept.ok()) {
      std::set<std::string> keep_set(kept->begin(), kept->end());
      std::vector<engine::FileRef> kept_files;
      for (auto& f : files) {
        if (keep_set.count(f.key)) kept_files.push_back(std::move(f));
      }
      if (!kept_files.empty()) files = std::move(kept_files);
    }
  }

  // ---- Expand the build-relation glob of a join query. ----
  std::vector<engine::FileRef> build_files;
  if (!physical->build_pattern.empty()) {
    std::string build_bucket, build_key_pattern;
    if (!ParseS3Uri(physical->build_pattern, &build_bucket,
                    &build_key_pattern)) {
      co_return Status::Invalid("bad build input pattern: " +
                                physical->build_pattern);
    }
    auto build_listing = co_await client.List(
        build_bucket, GlobLiteralPrefix(build_key_pattern));
    if (!build_listing.ok()) co_return build_listing.status();
    for (const auto& obj : *build_listing) {
      if (GlobMatch(build_key_pattern, obj.key)) {
        build_files.push_back(engine::FileRef{build_bucket, obj.key});
      }
    }
    if (build_files.empty()) {
      co_return Status::NotFound("no build input files match " +
                                 physical->build_pattern);
    }
  }

  // ---- Decide the worker count (W = files / F, Section 5.2). ----
  int workers;
  if (options.num_workers > 0) {
    workers = options.num_workers;
  } else {
    workers = static_cast<int>(
        (files.size() + options.files_per_worker - 1) /
        static_cast<size_t>(options.files_per_worker));
  }
  workers = std::max(1, std::min<int>(workers, static_cast<int>(files.size())));
  // Exchanges need a factorizable worker grid; round down if necessary.
  // Both exchanges of a join run over the same grid, so both constrain it.
  for (const auto& op : physical->fragment.ops) {
    const ExchangeSpec* specs[2] = {
        op.kind == PlanOp::Kind::kExchange ? &*op.exchange : nullptr,
        op.kind == PlanOp::Kind::kJoin ? &op.join->build_exchange : nullptr};
    for (const ExchangeSpec* spec : specs) {
      if (spec == nullptr) continue;
      int adjusted = LargestFactorizableWorkerCount(workers, spec->levels);
      if (adjusted != workers) {
        LAMBADA_LOG(Info) << "adjusting worker count " << workers << " -> "
                          << adjusted << " for the exchange grid";
        workers = adjusted;
      }
    }
  }

  // ---- Resolve adaptive scan tuning from table stats (Figure 7). ----
  // The listing gave the post-encoding (compressed) size of every input
  // file; together with the worker count that yields the bytes one worker
  // actually moves, which picks the request size balancing bandwidth
  // saturation against request count. The probe relation dominates a
  // join's scan traffic, so its files drive the choice for both sides.
  if (physical->fragment.tuning.chunk_bytes <= 0) {
    int64_t scan_bytes = 0;
    for (const auto& f : files) scan_bytes += file_sizes[f.key];
    physical->fragment.tuning.chunk_bytes = AdaptiveChunkBytes(
        scan_bytes / std::max(1, workers),
        physical->fragment.tuning.connections_per_read);
  }

  // ---- Upload the plan once; payloads carry the pointer. ----
  std::string plan_key = "plans/" + query_id;
  CO_RETURN_NOT_OK(co_await client.Put(
      options_.system_bucket, plan_key,
      Buffer::FromVector(physical->fragment.Serialize())));

  // ---- Build per-worker payloads (contiguous file ranges). ----
  std::vector<InvocationPayload> payloads;
  payloads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    InvocationPayload p;
    p.query_id = query_id;
    p.total_workers = static_cast<uint32_t>(workers);
    p.plan_bucket = options_.system_bucket;
    p.plan_key = plan_key;
    p.result_queue = options_.result_queue;
    p.data_scale = options.data_scale;
    p.self.worker_id = static_cast<uint32_t>(w);
    size_t begin = files.size() * static_cast<size_t>(w) /
                   static_cast<size_t>(workers);
    size_t end = files.size() * (static_cast<size_t>(w) + 1) /
                 static_cast<size_t>(workers);
    p.self.files.assign(files.begin() + begin, files.begin() + end);
    if (!build_files.empty()) {
      // Contiguous build-file ranges; workers beyond the build file count
      // get none (the exchange redistributes, so local coverage does not
      // matter for correctness).
      size_t bbegin = build_files.size() * static_cast<size_t>(w) /
                      static_cast<size_t>(workers);
      size_t bend = build_files.size() * (static_cast<size_t>(w) + 1) /
                    static_cast<size_t>(workers);
      p.self.build_files.assign(build_files.begin() + bbegin,
                                build_files.begin() + bend);
    }
    payloads.push_back(std::move(p));
  }

  // ---- Invoke. ----
  CO_RETURN_NOT_OK(co_await InvokeWorkers(std::move(payloads), function));
  const double t_invoked = sim->Now();

  // ---- Collect results from the queue (Section 3.3). ----
  std::vector<ResultMessage> results;
  results.reserve(static_cast<size_t>(workers));
  const double deadline = t_start + options_.query_timeout_s;
  while (results.size() < static_cast<size_t>(workers)) {
    if (sim->Now() > deadline) {
      co_return Status::Timeout("query timed out waiting for workers (" +
                                std::to_string(results.size()) + "/" +
                                std::to_string(workers) + ")");
    }
    auto batch = co_await cloud_->sqs().Receive(
        cloud_->driver_net(), options_.result_queue, 10,
        options_.result_poll_wait_s);
    if (!batch.ok()) co_return batch.status();
    for (const auto& raw : *batch) {
      auto msg = ResultMessage::Parse(raw);
      if (!msg.ok()) co_return msg.status();
      if (msg->query_id != query_id) continue;  // Stale message.
      results.push_back(*std::move(msg));
    }
  }

  // ---- Merge partial results (driver scope). ----
  for (const auto& r : results) {
    if (r.status_code != StatusCode::kOk) {
      co_return Status(r.status_code,
                       "worker " + std::to_string(r.worker_id) +
                           " failed: " + r.status_message);
    }
  }
  std::vector<engine::TableChunk> partials;
  partials.reserve(results.size());
  for (auto& r : results) {
    std::vector<uint8_t> bytes = r.inline_result;
    if (!r.spill_bucket.empty()) {
      auto spilled = co_await client.Get(r.spill_bucket, r.spill_key);
      if (!spilled.ok()) co_return spilled.status();
      bytes.assign((*spilled)->data(),
                   (*spilled)->data() + (*spilled)->size());
    }
    auto chunk = engine::DeserializeChunk(bytes.data(), bytes.size());
    if (!chunk.ok()) co_return chunk.status();
    partials.push_back(*std::move(chunk));
  }

  QueryReport report;
  if (physical->has_final_aggregate) {
    engine::HashAggregator merger(physical->final_group_by,
                                  physical->final_aggs);
    for (const auto& p : partials) {
      if (p.num_rows() == 0 && p.num_columns() == 0) continue;
      CO_RETURN_NOT_OK(merger.MergePartial(p));
    }
    report.result = merger.Finalize();
  } else {
    // Workers whose files were fully pruned emit empty chunks with no
    // schema; they contribute nothing to the concatenation.
    std::vector<engine::TableChunk> nonempty;
    for (auto& p : partials) {
      if (p.num_columns() > 0) nonempty.push_back(std::move(p));
    }
    auto merged = engine::ConcatChunks(nonempty);
    if (!merged.ok()) co_return merged.status();
    report.result = *std::move(merged);
  }

  report.latency_s = sim->Now() - t_start;
  report.invocation_issue_s = t_invoked - t_start;
  report.workers = workers;
  report.files = static_cast<int>(files.size());
  report.cost = cloud_->ledger().Snapshot() - cost_before;
  report.worker_results = std::move(results);
  const auto& all_metrics = cloud_->faas().completed_metrics();
  report.worker_metrics.assign(all_metrics.begin() + metrics_before,
                               all_metrics.end());
  co_return report;
}

Result<QueryReport> Driver::RunToCompletion(const Query& query,
                                            const RunOptions& options) {
  auto out = std::make_shared<Result<QueryReport>>(
      Status::Internal("query did not finish"));
  sim::Spawn([](Driver* self, const Query* q, const RunOptions* opts,
                std::shared_ptr<Result<QueryReport>> result)
                 -> sim::Async<void> {
    *result = co_await self->Run(*q, *opts);
  }(this, &query, &options, out));
  cloud_->sim().Run();
  return std::move(*out);
}

}  // namespace lambada::core
