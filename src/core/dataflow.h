#ifndef LAMBADA_CORE_DATAFLOW_H_
#define LAMBADA_CORE_DATAFLOW_H_

#include <string>
#include <vector>

#include "core/plan.h"
#include "engine/aggregate.h"
#include "engine/expr.h"

namespace lambada::core {

/// The user-facing dataflow builder, the C++ analogue of the paper's
/// Python frontend (Listing 1):
///
///   auto q = Query::FromParquet("s3://bucket/*.lpq")
///                .Filter(Col("x") >= Lit(0.05))
///                .Map(Col("x") * Col("y"), "v")
///                .ReduceSum("v");
///
/// A query is a linear chain of logical operators rooted at a scan. The
/// planner (planner.h) turns it into a scan with pushed-down selection and
/// projection plus a worker pipeline and a driver-side merge step.
class Query {
 public:
  /// Starts a query over all files matching the glob `pattern`
  /// (e.g. "s3://bucket/data/*.lpq").
  static Query FromParquet(std::string pattern);

  /// Keeps rows satisfying `predicate`.
  Query Filter(engine::ExprPtr predicate) const;

  /// Appends a computed column named `name`.
  Query Map(engine::ExprPtr expr, std::string name) const;

  /// Narrows to the given computed columns.
  Query Select(std::vector<engine::ExprPtr> exprs,
               std::vector<std::string> names) const;

  /// Repartitions rows across workers by hash of `keys` using the
  /// serverless exchange operator; `spec` tunes levels / write combining.
  Query Repartition(std::vector<std::string> keys,
                    ExchangeSpec spec = ExchangeSpec()) const;

  /// Hash-joins this query (the probe side) with `build` on
  /// probe_keys[i] == build_keys[i]. The planner partitions both sides
  /// through the serverless exchange on their keys, so the join executes
  /// co-partitioned on every worker; `exchange` is the template for both
  /// sides (levels, buckets, write combining — its keys are ignored).
  /// The inner-join output carries the probe columns plus the non-key
  /// build columns: the build keys are dropped (equal to the probe keys
  /// by definition), so downstream ops must reference the probe name.
  /// `build` must be a pipeline of Filter/Map/Select over its own scan.
  /// Ending it with an explicit Select is recommended: a closed build
  /// column set is what lets the planner push precise projections into
  /// both scans.
  Query JoinWith(const Query& build, std::vector<std::string> probe_keys,
                 std::vector<std::string> build_keys,
                 engine::JoinType type = engine::JoinType::kInner,
                 ExchangeSpec exchange = ExchangeSpec()) const;

  /// Grouped aggregation; must be the last operator if present.
  Query Aggregate(std::vector<std::string> group_by,
                  std::vector<engine::AggSpec> aggs) const;

  /// Convenience: global sum of one column (the reduce of Listing 1).
  Query ReduceSum(const std::string& column) const;
  /// Convenience: global row count.
  Query ReduceCount() const;

  /// Renders the physical plan this query compiles to as deterministic
  /// text (scan filters/projections, join order and per-join strategy
  /// decisions with modeled costs, aggregate, HAVING). Without a catalog
  /// the optimizer keeps the syntactic join order and partitioned
  /// exchanges; the driver's EXPLAIN output (QueryReport::explain_text)
  /// shows the choices made with real statistics.
  Result<std::string> Explain() const;

  const std::string& pattern() const { return pattern_; }
  const std::vector<PlanOp>& ops() const { return ops_; }

 private:
  explicit Query(std::string pattern) : pattern_(std::move(pattern)) {}
  Query WithOp(PlanOp op) const;

  std::string pattern_;
  std::vector<PlanOp> ops_;
};

}  // namespace lambada::core

#endif  // LAMBADA_CORE_DATAFLOW_H_
