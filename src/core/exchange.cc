#include "core/exchange.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>

#include "cloud/object_store.h"
#include "engine/chunk_serde.h"
#include "engine/partition.h"
#include "exec/parallel_for.h"
#include "exec/request_batcher.h"

namespace lambada::core {

namespace {

using engine::TableChunk;

/// CPU cost model of the in-memory exchange stages (vCPU-seconds).
constexpr double kPartitionCpuPerRow = 3e-9;
constexpr double kSerializeCpuPerByte = 1.0 / 1.5e9;
constexpr double kDeserializeCpuPerByte = 1.0 / 1.5e9;

/// The k-dimensional worker grid of the multi-level exchange.
struct Grid {
  std::vector<int> sides;
  std::vector<int> strides;

  static Grid Make(const std::vector<int>& factors) {
    Grid g;
    g.sides = factors;
    g.strides.resize(factors.size());
    int stride = 1;
    for (size_t i = 0; i < factors.size(); ++i) {
      g.strides[i] = stride;
      stride *= factors[i];
    }
    return g;
  }

  int Coord(int x, size_t dim) const {
    return (x / strides[dim]) % sides[dim];
  }
  /// x with coordinate `dim` zeroed: identifies the phase-`dim` group.
  int GroupBase(int x, size_t dim) const {
    return x - Coord(x, dim) * strides[dim];
  }
  /// Worker in x's phase-`dim` group with coordinate j in that dimension.
  int Member(int x, size_t dim, int j) const {
    return GroupBase(x, dim) + j * strides[dim];
  }
};

std::string BucketFor(const ExchangeSpec& spec, int group_base, int phase) {
  // Spread groups over buckets; the per-bucket request rate then drops by
  // the bucket count (Section 4.4.1).
  uint64_t h = static_cast<uint64_t>(group_base) * 1000003ULL +
               static_cast<uint64_t>(phase) * 97ULL;
  h ^= h >> 21;
  return spec.bucket_prefix + "-" +
         std::to_string(h % static_cast<uint64_t>(spec.num_buckets));
}

std::string GroupPrefix(const ExchangeSpec& spec, int phase,
                        int group_base) {
  return spec.exchange_id + "/ph" + std::to_string(phase) + "/g" +
         std::to_string(group_base) + "/";
}

std::string EncodeOffsets(const std::vector<uint64_t>& offsets) {
  // Compact hex deltas: "o<d0>.<d1>...." — offsets are ascending.
  std::string out = "o";
  char buf[32];
  uint64_t prev = 0;
  for (uint64_t off : offsets) {
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(off - prev));
    if (out.size() > 1) out += ".";
    out += buf;
    prev = off;
  }
  return out;
}

Result<std::vector<uint64_t>> DecodeOffsets(const std::string& encoded,
                                            size_t expected) {
  if (encoded.empty() || encoded[0] != 'o') {
    return Status::IOError("bad offsets encoding");
  }
  std::vector<uint64_t> offsets;
  uint64_t prev = 0;
  size_t i = 1;
  while (i < encoded.size()) {
    size_t end = encoded.find('.', i);
    if (end == std::string::npos) end = encoded.size();
    uint64_t delta = 0;
    for (size_t j = i; j < end; ++j) {
      char c = encoded[j];
      int v;
      if (c >= '0' && c <= '9') {
        v = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        v = c - 'a' + 10;
      } else {
        return Status::IOError("bad hex in offsets");
      }
      delta = delta * 16 + static_cast<uint64_t>(v);
    }
    prev += delta;
    offsets.push_back(prev);
    i = end + 1;
  }
  if (offsets.size() != expected) {
    return Status::IOError("offsets count mismatch");
  }
  return offsets;
}

/// Parses "s<j>-o..." file names of the offsets-in-name variant.
Result<std::pair<int, std::vector<uint64_t>>> ParseCombinedName(
    const std::string& key, const std::string& prefix, size_t num_parts) {
  if (key.size() <= prefix.size() ||
      key.compare(0, prefix.size(), prefix) != 0 ||
      key[prefix.size()] != 's') {
    return Status::IOError("unexpected exchange file name: " + key);
  }
  size_t dash = key.find('-', prefix.size());
  if (dash == std::string::npos) {
    return Status::IOError("exchange file name missing offsets: " + key);
  }
  int sender = std::stoi(key.substr(prefix.size() + 1,
                                    dash - prefix.size() - 1));
  ASSIGN_OR_RETURN(auto offsets,
                   DecodeOffsets(key.substr(dash + 1), num_parts + 1));
  return std::make_pair(sender, offsets);
}

}  // namespace

Result<std::vector<int>> FactorizeWorkers(int P, int levels) {
  if (P <= 0) return Status::Invalid("P must be positive");
  if (levels < 1 || levels > 3) {
    return Status::Invalid("exchange supports 1-3 levels");
  }
  if (levels == 1) return std::vector<int>{P};

  std::function<std::vector<int>(int, int)> best_factors =
      [&](int n, int k) -> std::vector<int> {
    if (k == 1) return {n};
    double target = std::pow(static_cast<double>(n), 1.0 / k);
    std::vector<int> best;
    double best_score = std::numeric_limits<double>::infinity();
    for (int d = 1; d <= n; ++d) {
      if (n % d != 0) continue;
      // Prefer the first factor near the k-th root.
      std::vector<int> rest = best_factors(n / d, k - 1);
      std::vector<int> cand;
      cand.push_back(d);
      cand.insert(cand.end(), rest.begin(), rest.end());
      int mx = *std::max_element(cand.begin(), cand.end());
      int mn = *std::min_element(cand.begin(), cand.end());
      double score = static_cast<double>(mx) / mn +
                     std::abs(d - target) / target;
      if (score < best_score) {
        best_score = score;
        best = cand;
      }
    }
    return best;
  };

  std::vector<int> factors = best_factors(P, levels);
  int mx = *std::max_element(factors.begin(), factors.end());
  int mn = *std::min_element(factors.begin(), factors.end());
  if (mn == 0 || static_cast<double>(mx) / mn > 16.0) {
    return Status::Invalid(
        "worker count " + std::to_string(P) + " has no balanced " +
        std::to_string(levels) + "-level factorization");
  }
  return factors;
}

int LargestFactorizableWorkerCount(int P, int levels) {
  for (int p = P; p >= 1; --p) {
    if (FactorizeWorkers(p, levels).ok()) return p;
  }
  return 1;
}

Status CreateExchangeBuckets(cloud::ObjectStore* s3,
                             const ExchangeSpec& spec) {
  for (int i = 0; i < spec.num_buckets; ++i) {
    RETURN_NOT_OK(
        s3->CreateBucket(spec.bucket_prefix + "-" + std::to_string(i)));
  }
  return Status::OK();
}

ExchangeRequestCounts PredictExchangeRequests(int P, int levels,
                                              bool write_combining) {
  // Table 2: with side length s = P^(1/k), each worker does s reads and s
  // writes per level (k levels); write combining collapses the writes of
  // one level to one per worker and adds O(P) lists (one+ per worker per
  // level).
  ExchangeRequestCounts c;
  double p = static_cast<double>(P);
  double s = std::pow(p, 1.0 / levels);
  c.reads = levels * p * s;
  c.writes = write_combining ? levels * p : levels * p * s;
  c.lists = write_combining ? levels * p : 0;
  c.scans = levels;
  return c;
}

sim::Async<Result<TableChunk>> RunExchange(cloud::WorkerEnv& env,
                                           const ExchangeSpec& spec, int p,
                                           int P, TableChunk input,
                                           ExchangeMetrics* metrics) {
  auto factors_or = FactorizeWorkers(P, spec.levels);
  if (!factors_or.ok()) co_return factors_or.status();
  Grid grid = Grid::Make(*factors_or);
  auto* sim = env.sim();
  cloud::S3Client client(env.services().s3, env.net());
  const double scale = env.data_scale;
  // Worker-local runtime: kernels are morsel-parallel, request fan-out is
  // bounded by io_depth. The default (serial, depth 1) reproduces the
  // sequential schedule bit for bit; any other setting changes only
  // timing, never output bytes (deterministic merge order below).
  const exec::ExecContext& xc = env.exec;
  exec::RequestBatcher batcher(sim, xc.io_depth);
  // Round spans parent under the exchange span current at entry; slice
  // retries annotate the active round's "get" span.
  obs::Tracer* tracer = env.tracer();
  const uint64_t ex_span = env.trace_span();
  uint64_t get_span = 0;

  // Shared wait+read machinery for all three exchange layouts: fetch(i)
  // returns sender i's raw slice bytes (a null buffer means "nothing for
  // us", no request issued); this wrapper deserializes and charges
  // compute per slot, fanned out through the batcher. Results land in
  // sender-slot order, so the merge is identical to the sequential read
  // order. An abort flag short-circuits slots not yet started once an
  // earlier slot fails, like the old sequential loop — and since the
  // FIFO gate starts slots in order, sentinel slots can only follow the
  // failing slot, so the first failure is still the one reported.
  // Per-slot bounded retry: transient statuses (503 SlowDown, injected
  // 500s) back off and re-fetch instead of failing the whole exchange.
  // Jitter draws happen only on failure, so fault-free schedules consume
  // no extra randomness. Re-fetching is safe at any point: exchange keys
  // are attempt-stable and PUTs are atomic last-writer-wins, so a retried
  // GET sees either the same bytes or nothing yet (and polls again).
  constexpr int kSliceAttempts = 4;
  constexpr double kSliceBackoffS = 0.2;
  constexpr double kSliceBackoffCapS = 2.0;
  auto read_slices = [&](size_t n, auto fetch)
      -> sim::Async<Result<std::vector<TableChunk>>> {
    bool failed = false;
    std::vector<std::function<sim::Async<Result<TableChunk>>()>> reads;
    reads.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      reads.push_back([&, i]() -> sim::Async<Result<TableChunk>> {
        if (failed) co_return TableChunk();  // Unattempted slot.
        auto part = co_await fetch(i);
        int slice_retries = 0;
        double backoff = kSliceBackoffS;
        while (!part.ok() && part.status().IsRetriable() &&
               slice_retries + 1 < kSliceAttempts) {
          ++slice_retries;
          if (tracer != nullptr) {
            tracer->Instant(get_span, "exchange.slice_retry");
          }
          co_await sim::Sleep(sim, std::min(backoff, kSliceBackoffCapS) *
                                       (0.5 + env.rng().NextDouble()));
          backoff *= 2;
          part = co_await fetch(i);
        }
        if (!part.ok()) {
          failed = true;
          co_return Status(part.status().code(),
                           part.status().message() +
                               " (exchange slice gave up after " +
                               std::to_string(slice_retries) + " retries)");
        }
        if (*part == nullptr) co_return TableChunk();  // Empty slice.
        auto chunk =
            engine::DeserializeChunk((*part)->data(), (*part)->size(), xc);
        if (!chunk.ok()) {
          failed = true;
          co_return chunk.status();
        }
        co_await env.Compute(static_cast<double>((*part)->size()) *
                             kDeserializeCpuPerByte * scale);
        co_return *std::move(chunk);
      });
    }
    auto slices = co_await batcher.Run(std::move(reads));
    std::vector<TableChunk> out;
    for (auto& slice : slices) {
      if (!slice.ok()) co_return slice.status();
      if (slice->num_columns() == 0) continue;  // Empty slice sentinel.
      out.push_back(*std::move(slice));
    }
    co_return out;
  };

  // Key columns resolve lazily from the first chunk that has a schema: a
  // worker whose local input is empty (e.g. the build side of a join when
  // the relation has fewer files than workers) enters the exchange with a
  // schema-less chunk, sends its empty slices so receivers never stall,
  // and learns the schema from the rows other senders deliver.
  std::vector<int> key_cols;
  bool keys_resolved = false;
  auto resolve_keys = [&](const engine::SchemaPtr& s) -> Status {
    key_cols.clear();
    for (const auto& k : spec.keys) {
      int idx = s->FieldIndex(k);
      if (idx < 0) {
        return Status::Invalid("exchange key column not found: " + k);
      }
      key_cols.push_back(idx);
    }
    keys_resolved = true;
    return Status::OK();
  };

  engine::SchemaPtr schema = input.schema();
  TableChunk current = std::move(input);
  ExchangeMetrics local;
  ExchangeMetrics& m = metrics != nullptr ? *metrics : local;

  // Crash site 1: the fate-armed handler dies before any slice lands. No
  // result message is sent; recovery is entirely the driver's speculative
  // re-invocation, and the retry starts from a clean (empty) key range.
  if (env.MaybeCrash(cloud::CrashSite::kBeforeExchangeWrites)) {
    co_return Status::Cancelled(
        "injected worker crash before exchange writes (fault plan)");
  }

  for (size_t phase = 0; phase < grid.sides.size(); ++phase) {
    ExchangeMetrics::Round round;
    const int side = grid.sides[phase];
    const int my_j = grid.Coord(p, phase);
    const int base = grid.GroupBase(p, phase);
    const std::string bucket = BucketFor(spec, base, static_cast<int>(phase));
    const std::string prefix = GroupPrefix(spec, static_cast<int>(phase),
                                           base);
    // Early returns (crashes, request failures) leave the open spans
    // unclosed on purpose: the trace then shows exactly where the worker
    // died ("(unclosed)" in the text rendering, zero-width in Chrome).
    uint64_t round_span = obs::Begin(tracer, ex_span, "exchange", "round");
    if (round_span != 0) {
      tracer->AddArg(round_span, "round", static_cast<int64_t>(phase));
    }

    // ---- Partition (DramPartitioning of Algorithm 1, projected onto this
    // phase's coordinate, per Algorithm 2). ----
    uint64_t part_span = obs::Begin(tracer, round_span, "exchange",
                                    "partition");
    double t0 = sim->Now();
    std::vector<TableChunk> parts;
    if (current.num_columns() == 0) {
      // Nothing local to route, but the group still expects this sender's
      // slices: emit `side` empty parts.
      parts.assign(static_cast<size_t>(side), TableChunk());
    } else {
      if (!keys_resolved) {
        Status keys = resolve_keys(current.schema());
        if (!keys.ok()) co_return keys;
      }
      std::vector<uint32_t> ids(current.num_rows());
      exec::ParallelFor(xc, 0, current.num_rows(), [&](size_t b, size_t e) {
        for (size_t row = b; row < e; ++row) {
          int dest = static_cast<int>(
              engine::HashRow(current, key_cols, row) %
              static_cast<uint64_t>(P));
          ids[row] = static_cast<uint32_t>(grid.Coord(dest, phase));
        }
      });
      parts = engine::PartitionBy(current, ids, side, xc);
    }
    co_await env.Compute(static_cast<double>(current.num_rows()) *
                         kPartitionCpuPerRow * scale);
    current = TableChunk();  // Free the input.
    round.partition_s = sim->Now() - t0;
    obs::End(tracer, part_span);

    // ---- Write ----
    uint64_t put_span = obs::Begin(tracer, round_span, "exchange", "put");
    t0 = sim->Now();
    // Crash site 2 (armed here, fires mid-write below): some attempt-stable
    // slices land, then the handler dies without a result message. The
    // re-invoked attempt rewrites every slice with identical bytes
    // (deterministic serialization + atomic last-writer-wins PUT), so a
    // reader that already consumed a first-attempt slice saw exactly the
    // bytes the retry writes — torn state is unobservable.
    const bool crash_mid_writes =
        env.MaybeCrash(cloud::CrashSite::kDuringExchangeWrites);
    std::vector<uint64_t> my_offsets;
    if (spec.write_combining) {
      auto combined = engine::SerializeChunksCombined(parts, xc);
      my_offsets = combined.offsets;
      co_await env.Compute(static_cast<double>(combined.bytes.size()) *
                           kSerializeCpuPerByte * scale);
      std::string key;
      if (spec.offsets_in_name) {
        key = prefix + "s" + std::to_string(my_j) + "-" +
              EncodeOffsets(combined.offsets);
        if (key.size() > env.services().s3->config().max_key_bytes) {
          co_return Status::Invalid(
              "write-combined file name exceeds the 1 KiB key limit; use "
              "the offsets-file variant for groups this large");
        }
      } else {
        key = prefix + "s" + std::to_string(my_j) + "-data";
      }
      const int64_t combined_bytes =
          static_cast<int64_t>(combined.bytes.size());
      Status put = co_await client.Put(
          bucket, key, Buffer::FromVector(std::move(combined.bytes)));
      if (!put.ok()) co_return put;
      m.registry.Add(obs::Metric::kExchangePutRequests, 1);
      m.registry.Add(obs::Metric::kExchangeBytesWritten, combined_bytes);
      if (crash_mid_writes) {
        // Dies between the data PUT and the idx PUT (or, with offsets in
        // the name, right after the single PUT): readers keep polling for
        // the missing idx until the retry attempt supplies it.
        co_return Status::Cancelled(
            "injected worker crash during exchange writes (fault plan)");
      }
      if (!spec.offsets_in_name) {
        BinaryWriter w;
        for (uint64_t off : combined.offsets) w.PutU64(off);
        auto idx_bytes = w.Take();
        m.registry.Add(obs::Metric::kExchangeBytesWritten,
                       static_cast<int64_t>(idx_bytes.size()));
        Status idx = co_await client.Put(
            bucket, prefix + "s" + std::to_string(my_j) + "-idx",
            Buffer::FromVector(std::move(idx_bytes)));
        if (!idx.ok()) co_return idx;
        m.registry.Add(obs::Metric::kExchangePutRequests, 1);
      }
    } else {
      // One file per receiver: serialize + charge + PUT per slot, fanned
      // out with bounded depth (slot order == the old sequential order).
      // The abort flag short-circuits like the old sequential loop did:
      // slots not yet started when an earlier slot fails return
      // immediately (zero virtual time), and only started requests — at
      // most `depth` — still run out.
      bool put_failed = false;
      bool crashed_mid = false;
      std::vector<std::function<sim::Async<Status>()>> puts;
      puts.reserve(static_cast<size_t>(side));
      for (int j = 0; j < side; ++j) {
        puts.push_back([&, j]() -> sim::Async<Status> {
          // Unattempted slot (earlier failure or mid-write crash).
          if (put_failed || crashed_mid) co_return Status::OK();
          auto blob =
              engine::SerializeChunk(parts[static_cast<size_t>(j)], xc);
          co_await env.Compute(static_cast<double>(blob.size()) *
                               kSerializeCpuPerByte * scale);
          const int64_t blob_bytes = static_cast<int64_t>(blob.size());
          Status put = co_await client.Put(
              bucket,
              prefix + "s" + std::to_string(my_j) + "r" + std::to_string(j),
              Buffer::FromVector(std::move(blob)));
          if (put.ok()) {
            m.registry.Add(obs::Metric::kExchangePutRequests, 1);
            m.registry.Add(obs::Metric::kExchangeBytesWritten, blob_bytes);
            // Die halfway through the receiver slots: slots already in
            // flight still land, later ones never start.
            if (crash_mid_writes && j == side / 2) crashed_mid = true;
          } else {
            put_failed = true;
          }
          co_return put;
        });
      }
      auto statuses = co_await batcher.Run(std::move(puts));
      for (const Status& put : statuses) {
        if (!put.ok()) co_return put;
      }
      if (crashed_mid) {
        co_return Status::Cancelled(
            "injected worker crash during exchange writes (fault plan)");
      }
    }
    parts.clear();
    round.write_s = sim->Now() - t0;
    obs::End(tracer, put_span);

    // Crash site 3: every slice of this phase is visible, but the handler
    // dies before reading (or, for the last phase, before reporting). The
    // retry overwrites each slice byte-identically and carries on.
    if (env.MaybeCrash(cloud::CrashSite::kAfterExchangeWrites)) {
      co_return Status::Cancelled(
          "injected worker crash after exchange writes (fault plan)");
    }

    // ---- Wait + read ----
    get_span = obs::Begin(tracer, round_span, "exchange", "get");
    t0 = sim->Now();
    std::vector<TableChunk> received;
    if (spec.write_combining && spec.offsets_in_name) {
      // Discover sender files via LIST until all group members appear
      // ("they may need to repeat a few times until they see the files
      // produced by all senders").
      uint64_t barrier_span = obs::Begin(tracer, get_span, "exchange",
                                         "barrier");
      std::vector<std::pair<int, std::vector<uint64_t>>> senders;
      std::vector<std::string> keys_found;
      double deadline = sim->Now() + spec.timeout_s;
      while (true) {
        auto listing = co_await client.List(bucket, prefix);
        m.registry.Add(obs::Metric::kExchangeListRequests, 1);
        if (!listing.ok()) co_return listing.status();
        senders.clear();
        keys_found.clear();
        bool parse_ok = true;
        for (const auto& obj : *listing) {
          auto parsed = ParseCombinedName(obj.key, prefix,
                                          static_cast<size_t>(side));
          if (!parsed.ok()) {
            parse_ok = false;
            break;
          }
          senders.push_back(*parsed);
          keys_found.push_back(obj.key);
        }
        if (parse_ok && senders.size() == static_cast<size_t>(side)) break;
        if (sim->Now() >= deadline) {
          co_return Status::Timeout("exchange: senders missing in phase " +
                                    std::to_string(phase));
        }
        co_await sim::Sleep(sim, spec.poll_interval_s);
      }
      round.wait_s = sim->Now() - t0;
      obs::End(tracer, barrier_span);
      t0 = sim->Now();
      // Ranged GET per sender; offsets came with the LISTed names.
      auto fetch = [&](size_t i) -> sim::Async<Result<BufferPtr>> {
        const auto& offsets = senders[i].second;
        uint64_t begin = offsets[static_cast<size_t>(my_j)];
        uint64_t end = offsets[static_cast<size_t>(my_j) + 1];
        if (end <= begin) co_return BufferPtr();
        auto part = co_await client.Get(bucket, keys_found[i],
                                        static_cast<int64_t>(begin),
                                        static_cast<int64_t>(end - begin));
        if (part.ok()) {
          m.registry.Add(obs::Metric::kExchangeGetRequests, 1);
          m.registry.Add(obs::Metric::kExchangeBytesRead,
                         static_cast<int64_t>(end - begin));
        }
        co_return part;
      };
      auto slices = co_await read_slices(senders.size(), fetch);
      if (!slices.ok()) co_return slices.status();
      received = *std::move(slices);
    } else if (spec.write_combining) {
      // Offsets in a separate file: doubles the read requests. Each
      // sender's idx-poll + ranged data GET runs as one batched slot.
      auto fetch = [&](size_t i) -> sim::Async<Result<BufferPtr>> {
        int j = static_cast<int>(i);
        auto idx = co_await client.GetWhenAvailable(
            bucket, prefix + "s" + std::to_string(j) + "-idx",
            spec.poll_interval_s, spec.timeout_s);
        if (!idx.ok()) co_return idx.status();
        m.registry.Add(obs::Metric::kExchangeGetRequests, 1);
        m.registry.Add(obs::Metric::kExchangeBytesRead,
                       static_cast<int64_t>((*idx)->size()));
        BinaryReader r((*idx)->data(), (*idx)->size());
        std::vector<uint64_t> offsets;
        for (int k = 0; k <= side; ++k) {
          auto off = r.GetU64();
          if (!off.ok()) co_return off.status();
          offsets.push_back(*off);
        }
        uint64_t begin = offsets[static_cast<size_t>(my_j)];
        uint64_t end = offsets[static_cast<size_t>(my_j) + 1];
        if (end <= begin) co_return BufferPtr();
        auto part = co_await client.Get(
            bucket, prefix + "s" + std::to_string(j) + "-data",
            static_cast<int64_t>(begin), static_cast<int64_t>(end - begin));
        if (part.ok()) {
          m.registry.Add(obs::Metric::kExchangeGetRequests, 1);
          m.registry.Add(obs::Metric::kExchangeBytesRead,
                         static_cast<int64_t>(end - begin));
        }
        co_return part;
      };
      auto slices = co_await read_slices(static_cast<size_t>(side), fetch);
      if (!slices.ok()) co_return slices.status();
      received = *std::move(slices);
    } else {
      // BasicExchange: one file per (sender, receiver) pair, polled per
      // batched slot.
      auto fetch = [&](size_t i) -> sim::Async<Result<BufferPtr>> {
        auto part = co_await client.GetWhenAvailable(
            bucket,
            prefix + "s" + std::to_string(i) + "r" + std::to_string(my_j),
            spec.poll_interval_s, spec.timeout_s);
        if (part.ok()) {
          m.registry.Add(obs::Metric::kExchangeGetRequests, 1);
          if (*part != nullptr) {
            m.registry.Add(obs::Metric::kExchangeBytesRead,
                           static_cast<int64_t>((*part)->size()));
          }
        }
        co_return part;
      };
      auto slices = co_await read_slices(static_cast<size_t>(side), fetch);
      if (!slices.ok()) co_return slices.status();
      received = *std::move(slices);
    }
    auto merged = engine::ConcatChunks(received);
    if (!merged.ok()) co_return merged.status();
    current = *std::move(merged);
    if (current.num_columns() == 0) {
      // Every slice was empty: keep the schema for the next phase (a null
      // schema stays null — senders with no local rows anywhere).
      current = TableChunk::Empty(schema);
    } else {
      schema = current.schema();
    }
    round.read_s = sim->Now() - t0;
    obs::End(tracer, get_span);
    get_span = 0;
    if (round_span != 0) {
      tracer->AddArgF(round_span, "partition_s", round.partition_s);
      tracer->AddArgF(round_span, "write_s", round.write_s);
      tracer->AddArgF(round_span, "wait_s", round.wait_s);
      tracer->AddArgF(round_span, "read_s", round.read_s);
    }
    obs::End(tracer, round_span);
    m.registry.Add(obs::Metric::kExchangeRounds, 1);
    m.registry.Observe(obs::Metric::kExchangeRoundTime,
                       round.partition_s + round.write_s + round.wait_s +
                           round.read_s);
    m.rounds.push_back(round);
    env.RecordPhase("exchange-round" + std::to_string(phase),
                    sim->Now() - round.partition_s - round.write_s -
                        round.wait_s - round.read_s);
  }
  co_return current;
}

}  // namespace lambada::core
