#include "core/sql.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

#include "core/driver.h"
#include "engine/aggregate.h"
#include "engine/expr.h"

namespace lambada::core {

namespace {

using engine::AggKind;
using engine::AggSpec;
using engine::BinaryOp;
using engine::Expr;
using engine::ExprPtr;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokenKind {
  kEnd,
  kIdentifier,  // column names, keywords (classified by text)
  kNumber,
  kString,  // '...'
  kSymbol,  // one of ( ) , * + - / = < > <= >= != <>
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0;
  bool is_integer = false;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const size_t n = input_.size();
    while (i < n) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(
                             input_[i])) ||
                         input_[i] == '_')) {
          ++i;
        }
        Token t;
        t.kind = TokenKind::kIdentifier;
        t.text = input_.substr(start, i - start);
        out.push_back(std::move(t));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        size_t start = i;
        bool has_dot = false;
        while (i < n && (std::isdigit(static_cast<unsigned char>(
                             input_[i])) ||
                         input_[i] == '.')) {
          has_dot |= input_[i] == '.';
          ++i;
        }
        Token t;
        t.kind = TokenKind::kNumber;
        t.text = input_.substr(start, i - start);
        t.number = std::strtod(t.text.c_str(), nullptr);
        t.is_integer = !has_dot;
        out.push_back(std::move(t));
        continue;
      }
      if (c == '\'') {
        size_t start = ++i;
        while (i < n && input_[i] != '\'') ++i;
        if (i >= n) return Status::Invalid("unterminated string literal");
        Token t;
        t.kind = TokenKind::kString;
        t.text = input_.substr(start, i - start);
        ++i;
        out.push_back(std::move(t));
        continue;
      }
      // Symbols, including two-character comparators.
      std::string sym(1, c);
      if ((c == '<' || c == '>' || c == '!') && i + 1 < n) {
        char d = input_[i + 1];
        if (d == '=' || (c == '<' && d == '>')) {
          sym += d;
          ++i;
        }
      }
      static const std::string kSymbols = "(),*+-/=<>";
      if (kSymbols.find(c) == std::string::npos && sym.size() == 1) {
        return Status::Invalid(std::string("unexpected character: ") + c);
      }
      Token t;
      t.kind = TokenKind::kSymbol;
      t.text = sym;
      out.push_back(std::move(t));
      ++i;
    }
    out.push_back(Token{});  // kEnd.
    return out;
  }

 private:
  const std::string& input_;
};

std::string Upper(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct SelectItem {
  bool is_aggregate = false;
  AggKind agg_kind = AggKind::kSum;
  ExprPtr expr;  // Null for COUNT(*).
  std::string name;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    RETURN_NOT_OK(ExpectKeyword("SELECT"));
    std::vector<SelectItem> items;
    while (true) {
      ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    RETURN_NOT_OK(ExpectKeyword("FROM"));
    if (Peek().kind != TokenKind::kString) {
      return Status::Invalid("FROM expects a quoted s3:// pattern");
    }
    std::string pattern = Next().text;

    std::vector<JoinClause> joins;
    while (true) {
      ASSIGN_OR_RETURN(JoinClause join, ParseJoinClause());
      if (!join.present) break;
      joins.push_back(std::move(join));
    }

    ExprPtr where;
    if (AcceptKeyword("WHERE")) {
      ASSIGN_OR_RETURN(where, ParseExpr());
    }
    std::vector<std::string> group_by;
    if (AcceptKeyword("GROUP")) {
      RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Status::Invalid("GROUP BY expects column names");
        }
        group_by.push_back(Next().text);
        if (!AcceptSymbol(",")) break;
      }
    }
    ExprPtr having;
    if (AcceptKeyword("HAVING")) {
      ASSIGN_OR_RETURN(having, ParseExpr());
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Status::Invalid("unexpected trailing tokens after query");
    }
    return Assemble(std::move(pattern), std::move(joins), std::move(items),
                    where, std::move(group_by), having);
  }

 private:
  // -- Token helpers --------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokenKind::kIdentifier && Upper(Peek().text) == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::Invalid("expected keyword " + kw + " near '" +
                             Peek().text + "'");
    }
    return Status::OK();
  }
  bool AcceptSymbol(const std::string& sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) {
      return Status::Invalid("expected '" + sym + "' near '" + Peek().text +
                             "'");
    }
    return Status::OK();
  }

  // -- JOIN clause ----------------------------------------------------------

  struct JoinClause {
    bool present = false;
    engine::JoinType type = engine::JoinType::kInner;
    std::string pattern;
    std::vector<std::string> probe_keys;
    std::vector<std::string> build_keys;
  };

  /// [[LEFT] SEMI] JOIN 'pattern' ON a = b [AND c = d]*. The left column
  /// of each equality references the FROM relation, the right column the
  /// joined one (see sql.h).
  Result<JoinClause> ParseJoinClause() {
    JoinClause join;
    if (AcceptKeyword("LEFT")) {
      RETURN_NOT_OK(ExpectKeyword("SEMI"));
      RETURN_NOT_OK(ExpectKeyword("JOIN"));
      join.type = engine::JoinType::kLeftSemi;
    } else if (AcceptKeyword("SEMI")) {
      RETURN_NOT_OK(ExpectKeyword("JOIN"));
      join.type = engine::JoinType::kLeftSemi;
    } else if (AcceptKeyword("JOIN")) {
      join.type = engine::JoinType::kInner;
    } else {
      return join;  // No join clause.
    }
    join.present = true;
    if (Peek().kind != TokenKind::kString) {
      return Status::Invalid("JOIN expects a quoted s3:// pattern");
    }
    join.pattern = Next().text;
    RETURN_NOT_OK(ExpectKeyword("ON"));
    while (true) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Status::Invalid(
            "JOIN ON expects probe_column = build_column equalities");
      }
      std::string probe = Next().text;
      if (!AcceptSymbol("=")) {
        return Status::Invalid(
            "JOIN ON supports only column = column equalities; put "
            "residual predicates in WHERE");
      }
      if (Peek().kind != TokenKind::kIdentifier) {
        return Status::Invalid(
            "JOIN ON expects a build-side column after '='");
      }
      join.probe_keys.push_back(std::move(probe));
      join.build_keys.push_back(Next().text);
      if (!AcceptKeyword("AND")) break;
    }
    return join;
  }

  // -- Select list ----------------------------------------------------------

  static std::optional<AggKind> AggFromName(const std::string& upper) {
    if (upper == "SUM") return AggKind::kSum;
    if (upper == "MIN") return AggKind::kMin;
    if (upper == "MAX") return AggKind::kMax;
    if (upper == "AVG") return AggKind::kAvg;
    if (upper == "COUNT") return AggKind::kCount;
    return std::nullopt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().kind == TokenKind::kIdentifier) {
      auto agg = AggFromName(Upper(Peek().text));
      if (agg.has_value() && Peek(1).kind == TokenKind::kSymbol &&
          Peek(1).text == "(") {
        std::string fn = Upper(Next().text);
        Next();  // (
        item.is_aggregate = true;
        item.agg_kind = *agg;
        if (*agg == AggKind::kCount && AcceptSymbol("*")) {
          item.expr = nullptr;
        } else {
          ASSIGN_OR_RETURN(item.expr, ParseExpr());
        }
        RETURN_NOT_OK(ExpectSymbol(")"));
        item.name = LowerDefaultName(fn);
        if (AcceptKeyword("AS")) {
          ASSIGN_OR_RETURN(item.name, ParseIdentifier());
        }
        return item;
      }
    }
    ASSIGN_OR_RETURN(item.expr, ParseExpr());
    item.name = item.expr->kind() == Expr::Kind::kColumn
                    ? item.expr->column_name()
                    : "expr" + std::to_string(anon_counter_++);
    if (AcceptKeyword("AS")) {
      ASSIGN_OR_RETURN(item.name, ParseIdentifier());
    }
    return item;
  }

  std::string LowerDefaultName(const std::string& fn) {
    std::string base = fn;
    for (auto& c : base) c = static_cast<char>(std::tolower(c));
    return base + std::to_string(anon_counter_++);
  }

  Result<std::string> ParseIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::Invalid("expected identifier near '" + Peek().text +
                             "'");
    }
    return Next().text;
  }

  // -- Expressions (precedence climbing) -------------------------------------
  // or < and < comparison/BETWEEN < additive < multiplicative < primary.

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AcceptKeyword("OR")) {
      ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Binary(BinaryOp::kOr, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseComparison());
    while (AcceptKeyword("AND")) {
      ASSIGN_OR_RETURN(ExprPtr right, ParseComparison());
      left = Expr::Binary(BinaryOp::kAnd, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseComparison() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    if (AcceptKeyword("BETWEEN")) {
      ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      RETURN_NOT_OK(ExpectKeyword("AND"));
      ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      return Expr::Binary(BinaryOp::kAnd,
                          Expr::Binary(BinaryOp::kGe, left, lo),
                          Expr::Binary(BinaryOp::kLe, left, hi));
    }
    if (Peek().kind == TokenKind::kSymbol) {
      const std::string& sym = Peek().text;
      BinaryOp op;
      if (sym == "=") {
        op = BinaryOp::kEq;
      } else if (sym == "!=" || sym == "<>") {
        op = BinaryOp::kNe;
      } else if (sym == "<") {
        op = BinaryOp::kLt;
      } else if (sym == "<=") {
        op = BinaryOp::kLe;
      } else if (sym == ">") {
        op = BinaryOp::kGt;
      } else if (sym == ">=") {
        op = BinaryOp::kGe;
      } else {
        return left;
      }
      ++pos_;
      ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return Expr::Binary(op, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (Peek().kind == TokenKind::kSymbol &&
           (Peek().text == "+" || Peek().text == "-")) {
      BinaryOp op = Next().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Binary(op, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (Peek().kind == TokenKind::kSymbol &&
           (Peek().text == "*" || Peek().text == "/")) {
      BinaryOp op = Next().text == "*" ? BinaryOp::kMul : BinaryOp::kDiv;
      ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = Expr::Binary(op, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kSymbol && t.text == "(") {
      ++pos_;
      ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (t.kind == TokenKind::kSymbol && t.text == "-") {
      ++pos_;
      ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
      return Expr::Binary(BinaryOp::kSub, Expr::LiteralInt(0), inner);
    }
    if (t.kind == TokenKind::kNumber) {
      ++pos_;
      if (t.is_integer) {
        return Expr::LiteralInt(static_cast<int64_t>(t.number));
      }
      return Expr::LiteralFloat(t.number);
    }
    if (t.kind == TokenKind::kIdentifier) {
      // DATE 'YYYY-MM-DD' literal (day number since 1992-01-01, matching
      // the numeric TPC-H dbgen).
      if (Upper(t.text) == "DATE" && Peek(1).kind == TokenKind::kString) {
        ++pos_;
        std::string d = Next().text;
        int y, m, day;
        if (std::sscanf(d.c_str(), "%d-%d-%d", &y, &m, &day) != 3) {
          return Status::Invalid("bad DATE literal: " + d);
        }
        return Expr::LiteralInt(DateToDays(y, m, day));
      }
      ++pos_;
      return Expr::Column(t.text);
    }
    return Status::Invalid("unexpected token in expression: '" + t.text +
                           "'");
  }

  /// Days since 1992-01-01 (duplicated from workload to avoid a layering
  /// inversion; covered by tests against workload::TpchDate).
  static int64_t DateToDays(int year, int month, int day) {
    auto civil = [](int y, int m, int d) -> int64_t {
      y -= m <= 2;
      int era = (y >= 0 ? y : y - 399) / 400;
      unsigned yoe = static_cast<unsigned>(y - era * 400);
      unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
      unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
      return era * 146097LL + static_cast<int64_t>(doe) - 719468LL;
    };
    return civil(year, month, day) - civil(1992, 1, 1);
  }

  // -- Assembly ---------------------------------------------------------------

  /// Rewrites column references per `renames` (used to map build-key
  /// names to their probe-key equivalents: the join output drops the
  /// build keys, but ON equality makes the probe column the same value).
  static ExprPtr RenameColumns(
      const ExprPtr& e, const std::map<std::string, std::string>& renames) {
    if (e == nullptr) return e;
    switch (e->kind()) {
      case Expr::Kind::kColumn: {
        auto it = renames.find(e->column_name());
        return it == renames.end() ? e : Expr::Column(it->second);
      }
      case Expr::Kind::kBinary:
        return Expr::Binary(e->op(), RenameColumns(e->left(), renames),
                            RenameColumns(e->right(), renames));
      default:
        return e;
    }
  }

  Result<Query> Assemble(std::string pattern, std::vector<JoinClause> joins,
                         std::vector<SelectItem> items, ExprPtr where,
                         std::vector<std::string> group_by, ExprPtr having) {
    Query q = Query::FromParquet(std::move(pattern));
    // Each join's output carries the probe keys but drops the build keys
    // (their values are equal). Let later ON clauses, WHERE, SELECT,
    // GROUP BY, and HAVING reference either name by rewriting build keys
    // to their probe partner, accumulated across the join chain.
    std::map<std::string, std::string> renames;
    for (auto& join : joins) {
      for (auto& pk : join.probe_keys) {
        auto it = renames.find(pk);
        if (it != renames.end()) pk = it->second;
      }
      for (size_t i = 0; i < join.build_keys.size(); ++i) {
        renames[join.build_keys[i]] = join.probe_keys[i];
      }
      q = q.JoinWith(Query::FromParquet(std::move(join.pattern)),
                     std::move(join.probe_keys),
                     std::move(join.build_keys), join.type);
    }
    if (!renames.empty()) {
      where = RenameColumns(where, renames);
      having = RenameColumns(having, renames);
      for (auto& item : items) item.expr = RenameColumns(item.expr, renames);
      for (auto& g : group_by) {
        auto it = renames.find(g);
        if (it != renames.end()) g = it->second;
      }
    }
    // WHERE runs after the joins (it may reference any side; the
    // optimizer pushes what it can into the individual scans); for
    // single-table queries this is the position it always had.
    if (where != nullptr) q = q.Filter(where);

    bool any_agg = false;
    for (const auto& item : items) any_agg |= item.is_aggregate;

    if (!any_agg && group_by.empty()) {
      if (having != nullptr) {
        return Status::Invalid("HAVING requires aggregation");
      }
      // Pure projection.
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (auto& item : items) {
        exprs.push_back(item.expr);
        names.push_back(item.name);
      }
      return q.Select(std::move(exprs), std::move(names));
    }

    // Aggregation query: non-aggregate items must be group-by keys.
    std::vector<AggSpec> aggs;
    for (auto& item : items) {
      if (item.is_aggregate) {
        aggs.push_back(AggSpec{item.agg_kind, item.expr, item.name});
        continue;
      }
      if (item.expr->kind() != Expr::Kind::kColumn) {
        return Status::Invalid(
            "non-aggregate select items must be plain GROUP BY columns");
      }
      bool is_key = false;
      for (const auto& g : group_by) is_key |= (g == item.expr->column_name());
      if (!is_key) {
        return Status::Invalid("column " + item.expr->column_name() +
                               " is neither aggregated nor in GROUP BY");
      }
    }
    q = q.Aggregate(std::move(group_by), std::move(aggs));
    // HAVING references the aggregate's output columns; the planner turns
    // this trailing filter into a driver-scope op.
    if (having != nullptr) q = q.Filter(having);
    return q;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
};

}  // namespace

Result<Query> ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  ASSIGN_OR_RETURN(auto tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<std::string> ExplainSql(const std::string& sql) {
  // Strip the leading EXPLAIN keyword, then compile and render.
  size_t i = 0;
  while (i < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  size_t start = i;
  while (i < sql.size() &&
         std::isalpha(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  if (Upper(sql.substr(start, i - start)) != "EXPLAIN") {
    return Status::Invalid("EXPLAIN expects a leading EXPLAIN keyword");
  }
  ASSIGN_OR_RETURN(Query query, ParseSql(sql.substr(i)));
  return query.Explain();
}

sim::Async<Result<std::string>> ExplainAnalyzeSql(Driver* driver,
                                                  const std::string& sql,
                                                  const RunOptions& options) {
  // Strip the leading EXPLAIN ANALYZE keywords, then compile, run with
  // tracing on, and render the annotated plan (core/analyze.h).
  size_t i = 0;
  auto take_keyword = [&sql, &i]() {
    while (i < sql.size() &&
           std::isspace(static_cast<unsigned char>(sql[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < sql.size() &&
           std::isalpha(static_cast<unsigned char>(sql[i]))) {
      ++i;
    }
    return Upper(sql.substr(start, i - start));
  };
  if (take_keyword() != "EXPLAIN" || take_keyword() != "ANALYZE") {
    co_return Status::Invalid(
        "EXPLAIN ANALYZE expects leading EXPLAIN ANALYZE keywords");
  }
  auto query = ParseSql(sql.substr(i));
  if (!query.ok()) co_return query.status();
  RunOptions traced = options;
  traced.trace.enabled = true;
  auto report = co_await driver->Run(*query, traced);
  if (!report.ok()) co_return report.status();
  co_return report->explain_analyze_text;
}

}  // namespace lambada::core
