#include "core/messages.h"

namespace lambada::core {

namespace {

void PutFileRefs(BinaryWriter* w, const std::vector<engine::FileRef>& v) {
  w->PutVarint(v.size());
  for (const auto& f : v) {
    w->PutString(f.bucket);
    w->PutString(f.key);
  }
}

Result<std::vector<engine::FileRef>> GetFileRefs(BinaryReader* r) {
  ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > 1000000) return Status::IOError("implausible file count");
  std::vector<engine::FileRef> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    engine::FileRef f;
    ASSIGN_OR_RETURN(f.bucket, r->GetString());
    ASSIGN_OR_RETURN(f.key, r->GetString());
    v.push_back(std::move(f));
  }
  return v;
}

/// Structural validation of a parsed tree section: a payload whose range
/// claims ids outside the fleet, overlaps a sibling's capacity, or does
/// not match the declared tree shape must be a typed error, never a
/// fleet of overlapping invocations.
Status ValidateTree(const InvocationPayload& p) {
  const TreeAssignment& t = p.tree;
  if (t.generation == 0) {
    return Status::Invalid("tree section with generation 0");
  }
  if (t.fanout.empty() || t.generation > t.fanout.size()) {
    return Status::Invalid("tree generation " + std::to_string(t.generation) +
                           " beyond the declared depth of " +
                           std::to_string(t.fanout.size()));
  }
  if (t.subtree_end <= p.self.worker_id) {
    return Status::Invalid("empty or inverted subtree range");
  }
  if (t.subtree_end > p.total_workers) {
    return Status::Invalid("subtree range end " +
                           std::to_string(t.subtree_end) +
                           " beyond the fleet of " +
                           std::to_string(p.total_workers));
  }
  // Capacity of one generation-t subtree under the declared fanouts; a
  // wider range would overlap the next sibling's claim.
  uint64_t cap = 1;
  for (size_t g = t.fanout.size() - 1; g + 1 > t.generation; --g) {
    cap = 1 + static_cast<uint64_t>(t.fanout[g]) * cap;
    if (cap > p.total_workers) break;  // Saturates; ranges are <= fleet.
  }
  if (t.subtree_end - p.self.worker_id > cap) {
    return Status::Invalid("subtree range of " +
                           std::to_string(t.subtree_end - p.self.worker_id) +
                           " ids overlaps the next sibling (generation-" +
                           std::to_string(t.generation) + " capacity " +
                           std::to_string(cap) + ")");
  }
  if (!p.to_invoke.empty()) {
    return Status::Invalid(
        "payload carries both an explicit invoke list and a subtree range");
  }
  return Status::OK();
}

}  // namespace

void WorkerInput::Serialize(BinaryWriter* w) const {
  w->PutU32(worker_id);
  PutFileRefs(w, files);
  PutFileRefs(w, build_files);
  // Appended field (per the contract note above). Presence is conditioned
  // on build_files being non-empty — deterministic on both sides — so
  // single-table payloads stay bit-identical to the original layout. A
  // multi-join worker whose slices are ALL empty loses its all-zero
  // counts here; the worker reads missing ordinals as empty lists.
  if (!build_files.empty()) {
    w->PutVarint(build_counts.size());
    for (uint32_t n : build_counts) w->PutU32(n);
  }
  // Appended field: the driver's invocation attempt for this worker.
  w->PutU32(attempt);
}

Result<WorkerInput> WorkerInput::Deserialize(BinaryReader* r) {
  WorkerInput in;
  ASSIGN_OR_RETURN(in.worker_id, r->GetU32());
  ASSIGN_OR_RETURN(in.files, GetFileRefs(r));
  ASSIGN_OR_RETURN(in.build_files, GetFileRefs(r));
  if (!in.build_files.empty()) {
    ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
    if (n > 10000) return Status::IOError("implausible build_counts");
    in.build_counts.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      ASSIGN_OR_RETURN(uint32_t c, r->GetU32());
      in.build_counts.push_back(c);
    }
  }
  ASSIGN_OR_RETURN(in.attempt, r->GetU32());
  return in;
}

std::string InvocationPayload::Serialize() const {
  BinaryWriter w;
  w.PutString(query_id);
  w.PutU32(total_workers);
  w.PutString(plan_bucket);
  w.PutString(plan_key);
  w.PutString(result_queue);
  self.Serialize(&w);
  w.PutVarint(to_invoke.size());
  for (const auto& t : to_invoke) t.Serialize(&w);
  w.PutF64(data_scale);
  w.PutU8(hedge_gets ? 1 : 0);
  // Appended tree-assignment section, written only when active: legacy
  // payloads — including every two-level plan the driver emits by
  // default — keep their released bytes, and Parse keys presence on
  // remaining() > 0, which the trailing-bytes check makes unambiguous.
  if (tree.active()) {
    w.PutU8(1);  // Section version; unknown versions are a loud error.
    w.PutU32(tree.subtree_end);
    w.PutU32(tree.generation);
    w.PutVarint(tree.fanout.size());
    for (uint32_t f : tree.fanout) w.PutU32(f);
    w.PutString(tree.inputs_key);
  }
  auto bytes = w.Take();
  return std::string(bytes.begin(), bytes.end());
}

Result<InvocationPayload> InvocationPayload::Parse(const std::string& bytes) {
  BinaryReader r(reinterpret_cast<const uint8_t*>(bytes.data()),
                 bytes.size());
  InvocationPayload p;
  ASSIGN_OR_RETURN(p.query_id, r.GetString());
  ASSIGN_OR_RETURN(p.total_workers, r.GetU32());
  ASSIGN_OR_RETURN(p.plan_bucket, r.GetString());
  ASSIGN_OR_RETURN(p.plan_key, r.GetString());
  ASSIGN_OR_RETURN(p.result_queue, r.GetString());
  ASSIGN_OR_RETURN(p.self, WorkerInput::Deserialize(&r));
  ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > 100000) return Status::IOError("implausible invoke list");
  p.to_invoke.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(WorkerInput in, WorkerInput::Deserialize(&r));
    p.to_invoke.push_back(std::move(in));
  }
  ASSIGN_OR_RETURN(p.data_scale, r.GetF64());
  ASSIGN_OR_RETURN(uint8_t hedge, r.GetU8());
  p.hedge_gets = hedge != 0;
  // Appended tree-assignment section (presence = bytes remain).
  if (r.remaining() != 0) {
    ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
    if (version != 1) {
      return Status::IOError("unknown payload tree-section version " +
                             std::to_string(version));
    }
    ASSIGN_OR_RETURN(p.tree.subtree_end, r.GetU32());
    ASSIGN_OR_RETURN(p.tree.generation, r.GetU32());
    ASSIGN_OR_RETURN(uint64_t nf, r.GetVarint());
    if (nf == 0 || nf > 16) {
      return Status::IOError("implausible tree depth");
    }
    p.tree.fanout.reserve(nf);
    for (uint64_t i = 0; i < nf; ++i) {
      ASSIGN_OR_RETURN(uint32_t f, r.GetU32());
      p.tree.fanout.push_back(f);
    }
    ASSIGN_OR_RETURN(p.tree.inputs_key, r.GetString());
    RETURN_NOT_OK(ValidateTree(p));
  }
  if (r.remaining() != 0) return Status::IOError("payload trailing bytes");
  return p;
}

void WorkerResultMetrics::Serialize(BinaryWriter* w) const {
  // The registry's own wire format (sparse sections of (metric id, value)
  // entries) replaces the original fixed 17-field layout — a breaking
  // rewrite, legal because driver and workers always run the same build.
  registry.Serialize(w);
}

Result<WorkerResultMetrics> WorkerResultMetrics::Deserialize(
    BinaryReader* r) {
  WorkerResultMetrics m;
  ASSIGN_OR_RETURN(m.registry, obs::MetricsRegistry::Deserialize(r));
  return m;
}

std::string ResultMessage::Serialize() const {
  BinaryWriter w;
  w.PutString(query_id);
  w.PutU32(worker_id);
  w.PutU8(static_cast<uint8_t>(status_code));
  w.PutString(status_message);
  metrics.Serialize(&w);
  w.PutBytes(inline_result);
  w.PutString(spill_bucket);
  w.PutString(spill_key);
  w.PutU32(attempt);
  auto bytes = w.Take();
  return std::string(bytes.begin(), bytes.end());
}

Result<ResultMessage> ResultMessage::Parse(const std::string& bytes) {
  BinaryReader r(reinterpret_cast<const uint8_t*>(bytes.data()),
                 bytes.size());
  ResultMessage m;
  ASSIGN_OR_RETURN(m.query_id, r.GetString());
  ASSIGN_OR_RETURN(m.worker_id, r.GetU32());
  ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::IOError("bad status code in result");
  }
  m.status_code = static_cast<StatusCode>(code);
  ASSIGN_OR_RETURN(m.status_message, r.GetString());
  ASSIGN_OR_RETURN(m.metrics, WorkerResultMetrics::Deserialize(&r));
  ASSIGN_OR_RETURN(m.inline_result, r.GetBytes());
  ASSIGN_OR_RETURN(m.spill_bucket, r.GetString());
  ASSIGN_OR_RETURN(m.spill_key, r.GetString());
  ASSIGN_OR_RETURN(m.attempt, r.GetU32());
  if (r.remaining() != 0) return Status::IOError("result trailing bytes");
  return m;
}

}  // namespace lambada::core
