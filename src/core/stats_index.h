#ifndef LAMBADA_CORE_STATS_INDEX_H_
#define LAMBADA_CORE_STATS_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "cloud/kv_store.h"
#include "common/status.h"
#include "engine/expr.h"
#include "format/metadata.h"
#include "sim/async.h"

namespace lambada::core {

/// Central min/max statistics index — the optimization the paper sketches
/// in Section 5.3: "If the min/max indices were stored in a central place
/// and available before starting the workers, these workers would not even
/// be started". We store per-file column bounds in DynamoDB at load time;
/// the driver consults the index before fan-out and skips files whose
/// bounds cannot satisfy the query predicate, saving their invocations,
/// cold starts, metadata round trips, and billed time entirely.
///
/// The same bounds double as the cost-based optimizer's statistics
/// (core/optimizer.h): row counts give join cardinalities, [min, max]
/// widths give predicate selectivities.
///
/// Layout: one DynamoDB item per (dataset, column):
///   key   = "{dataset}#{column}"
///   value = [n] x { file_key, min f64, max f64, rows i64 }  (binary)
/// A 320-file dataset fits comfortably within DynamoDB's 400 KB item
/// limit; larger datasets would shard the item by file-range.
class StatsIndex {
 public:
  explicit StatsIndex(cloud::KeyValueStore* ddb,
                      std::string table = "lambada-stats")
      : ddb_(ddb), table_(std::move(table)) {}

  /// Creates the backing table (installation time; free).
  Status CreateTable() { return ddb_->CreateTable(table_); }

  /// Registers one file's footer statistics under `dataset`. Host-side:
  /// indexing happens as part of the (host-side) data load, like the rest
  /// of dataset preparation.
  Status RegisterFileDirect(const std::string& dataset,
                            const std::string& file_key,
                            const format::FileMetadata& metadata);

  /// Per-file [min, max] and row count of `column` within `dataset`. One
  /// DynamoDB read.
  struct FileBounds {
    std::string file_key;
    double min = 0;
    double max = 0;
    int64_t rows = 0;
  };
  sim::Async<Result<std::vector<FileBounds>>> Lookup(cloud::NetContext ctx,
                                                     std::string dataset,
                                                     std::string column);

  /// Returns the subset of `files` (object keys) that may contain rows
  /// satisfying `predicate`, consulting the index for every bounded
  /// column. Files absent from the index are conservatively kept.
  sim::Async<Result<std::vector<std::string>>> PruneFiles(
      cloud::NetContext ctx, std::string dataset,
      std::vector<std::string> files, engine::ExprPtr predicate);

  const std::string& table() const { return table_; }

 private:
  cloud::KeyValueStore* ddb_;
  std::string table_;
};

}  // namespace lambada::core

#endif  // LAMBADA_CORE_STATS_INDEX_H_
