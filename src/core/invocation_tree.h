#ifndef LAMBADA_CORE_INVOCATION_TREE_H_
#define LAMBADA_CORE_INVOCATION_TREE_H_

#include <cstdint>
#include <vector>

#include "cloud/faas.h"
#include "common/status.h"
#include "core/messages.h"
#include "models/costmodel.h"
#include "sim/async.h"

namespace lambada::core {

// N-level invocation trees (Section 4.2, generalized). The driver invokes
// the generation-1 roots; every root owns a contiguous worker-ID range
// [begin, end) with its own id at `begin`, and recursively starts the
// rest of its range through fixed-size child subtrees. The partitioning
// is pure arithmetic over (workers, fanout) — no randomness, no shared
// state — so the same plan expands to byte-identical ID ranges on every
// thread count, every run, and on both the driver and worker sides.

/// Shape of one invocation tree. fanout[0] bounds the driver's direct
/// invocations (the generation-1 roots); fanout[g] bounds the children a
/// generation-g node invokes. fanout.size() is the tree depth: depth 1 is
/// flat driver-only invocation, depth 2 the paper's two-level tree.
struct TreePlan {
  uint32_t workers = 0;
  std::vector<uint32_t> fanout;

  int depth() const { return static_cast<int>(fanout.size()); }
  /// Worker IDs covered by one generation-g subtree, root included.
  /// Generation depth() covers exactly itself.
  uint32_t SubtreeCapacity(int generation) const;
};

/// Planner inputs: a forced depth (or 0 = pick the depth whose modeled
/// all-running time is best) and the invoker-profile parameters the model
/// runs on.
struct TreeOptions {
  /// 0 = choose automatically among [2, max_depth] (fleets of at most
  /// `direct_invoke_max` workers always get depth 1); otherwise a forced
  /// depth in [1, max_depth].
  int depth = 0;
  int max_depth = 3;
  /// Fleets this small are invoked directly by the driver — a tree would
  /// only add a container-start hop (matches the historical driver rule).
  uint32_t direct_invoke_max = 4;
  models::InvocationTreeParams cost;
};

/// One node of the expanded tree: its own worker id (`begin`) and the
/// contiguous ID range its subtree is responsible for starting.
struct TreeNode {
  uint32_t begin = 0;
  uint32_t end = 0;
  uint32_t generation = 0;  ///< 1-based; the driver is generation 0.
  uint32_t size() const { return end - begin; }
};

/// Computes the tree shape for a fleet. Depth-2 plans reproduce the
/// historical grouping exactly — group = ceil(sqrt(P)), fixed chunks of
/// `group` ids — so existing two-level fleets keep their committed
/// invocation schedules byte-for-byte; deeper plans balance the per-level
/// fanout at ~P^(1/depth).
TreePlan PlanInvocationTree(uint32_t workers, const TreeOptions& options = {});

/// The generation-1 roots the driver invokes, in worker-id order.
std::vector<TreeNode> TreeRoots(const TreePlan& plan);

/// The children `node` must invoke: its range minus itself, split into
/// fixed SubtreeCapacity(generation+1)-sized chunks. Rejects (Invalid)
/// nodes whose range is out of the fleet's bounds, exceeds the node's
/// generation capacity, or would need more children than the plan's
/// branching bound — the checks that make forged payload ranges a loud
/// error instead of overlapping invocations.
Result<std::vector<TreeNode>> TreeChildren(const TreePlan& plan,
                                           const TreeNode& node);

// -- Worker-side expansion ---------------------------------------------------

/// Invokes the children this payload is responsible for: the subtree
/// ranges of its tree assignment, or the explicit to_invoke list of a
/// legacy two-level payload. Retries retriable Invoke failures with
/// jittered exponential backoff (bounded), logging and moving on like the
/// historical worker loop. Consumes this node's invoker-loss fate from
/// the region's fault plan (cloud/fault.h) when one is installed: on a
/// drawn crash the environment is marked crashed — possibly after half
/// the children went out — and the caller must abandon the invocation
/// without reporting a result. Returns the number of children invoked.
sim::Async<Result<int>> InvokeTreeChildren(cloud::WorkerEnv& env,
                                           const InvocationPayload& payload);

// -- Batched worker-input table ----------------------------------------------
// With invocation batching a payload carries only its subtree ID range;
// the per-worker inputs live in one S3 object ("plans/<qid>.inputs") and
// every worker fetches its own entry with two small ranged GETs — O(1)
// payload bytes and O(1) fetched bytes per worker regardless of fleet
// size. Layout: u32 worker count, (count+1) u64 blob offsets (relative to
// the header end), then every WorkerInput serialized back-to-back.

std::vector<uint8_t> EncodeWorkerInputTable(
    const std::vector<WorkerInput>& inputs);

/// Byte position of worker `w`'s (start, end) offset pair in the table.
inline int64_t WorkerInputOffsetPos(uint32_t w) {
  return 4 + 8 * static_cast<int64_t>(w);
}
/// Total header size for an `n`-worker table; blob offsets are relative
/// to this.
inline int64_t WorkerInputTableHeaderBytes(uint32_t n) {
  return 4 + 8 * (static_cast<int64_t>(n) + 1);
}

/// Decodes one worker's blob fetched from the table. Trailing bytes and
/// truncation are IOError, like every other wire format.
Result<WorkerInput> DecodeWorkerInputEntry(const uint8_t* data, size_t size);

}  // namespace lambada::core

#endif  // LAMBADA_CORE_INVOCATION_TREE_H_
