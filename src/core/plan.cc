#include "core/plan.h"

namespace lambada::core {

namespace {

void PutStringVec(BinaryWriter* w, const std::vector<std::string>& v) {
  w->PutVarint(v.size());
  for (const auto& s : v) w->PutString(s);
}

Result<std::vector<std::string>> GetStringVec(BinaryReader* r) {
  ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > 1000000) return Status::IOError("implausible string count");
  std::vector<std::string> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::string s, r->GetString());
    v.push_back(std::move(s));
  }
  return v;
}

void PutOptionalExpr(BinaryWriter* w, const engine::ExprPtr& e) {
  w->PutU8(e != nullptr ? 1 : 0);
  if (e != nullptr) e->Serialize(w);
}

Result<engine::ExprPtr> GetOptionalExpr(BinaryReader* r) {
  ASSIGN_OR_RETURN(uint8_t has, r->GetU8());
  if (has == 0) return engine::ExprPtr(nullptr);
  return engine::Expr::Deserialize(r);
}

/// Body of PlanOp::Deserialize after the kind tag has been read and
/// validated. `depth` counts the JoinSpecs currently open on the call
/// stack: a kJoin body recurses into JoinSpec::Deserialize, which fails
/// once depth reaches kMaxPlanDepth, so a crafted blob nesting joins
/// arbitrarily deep gets a clean parse error instead of a stack overflow.
Result<PlanOp> DeserializePlanOpBody(PlanOp::Kind kind, BinaryReader* r,
                                     int depth);

}  // namespace

void ExchangeSpec::Serialize(BinaryWriter* w) const {
  PutStringVec(w, keys);
  w->PutU8(static_cast<uint8_t>(levels));
  w->PutU8(write_combining ? 1 : 0);
  w->PutU8(offsets_in_name ? 1 : 0);
  w->PutU32(static_cast<uint32_t>(num_buckets));
  w->PutString(bucket_prefix);
  w->PutString(exchange_id);
  w->PutF64(poll_interval_s);
  w->PutF64(timeout_s);
}

Result<ExchangeSpec> ExchangeSpec::Deserialize(BinaryReader* r) {
  ExchangeSpec s;
  ASSIGN_OR_RETURN(s.keys, GetStringVec(r));
  ASSIGN_OR_RETURN(uint8_t levels, r->GetU8());
  if (levels < 1 || levels > 3) return Status::IOError("bad exchange levels");
  s.levels = levels;
  ASSIGN_OR_RETURN(uint8_t wc, r->GetU8());
  s.write_combining = wc != 0;
  ASSIGN_OR_RETURN(uint8_t oin, r->GetU8());
  s.offsets_in_name = oin != 0;
  ASSIGN_OR_RETURN(uint32_t buckets, r->GetU32());
  s.num_buckets = static_cast<int>(buckets);
  ASSIGN_OR_RETURN(s.bucket_prefix, r->GetString());
  ASSIGN_OR_RETURN(s.exchange_id, r->GetString());
  ASSIGN_OR_RETURN(s.poll_interval_s, r->GetF64());
  ASSIGN_OR_RETURN(s.timeout_s, r->GetF64());
  return s;
}

void JoinSpec::Serialize(BinaryWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type));
  PutStringVec(w, probe_keys);
  PutStringVec(w, build_keys);
  w->PutString(build_pattern);
  PutStringVec(w, build_scan_projection);
  PutOptionalExpr(w, build_scan_filter);
  w->PutVarint(build_ops.size());
  for (const auto& op : build_ops) op.Serialize(w);
  build_exchange.Serialize(w);
}

Result<JoinSpec> JoinSpec::Deserialize(BinaryReader* r, int depth) {
  if (depth >= kMaxPlanDepth) {
    return Status::IOError("plan exceeds kMaxPlanDepth join nesting");
  }
  JoinSpec s;
  ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
  if (type > static_cast<uint8_t>(engine::JoinType::kLeftSemi)) {
    return Status::IOError("bad join type");
  }
  s.type = static_cast<engine::JoinType>(type);
  ASSIGN_OR_RETURN(s.probe_keys, GetStringVec(r));
  ASSIGN_OR_RETURN(s.build_keys, GetStringVec(r));
  if (s.probe_keys.empty() || s.probe_keys.size() != s.build_keys.size()) {
    return Status::IOError("bad join key lists");
  }
  ASSIGN_OR_RETURN(s.build_pattern, r->GetString());
  ASSIGN_OR_RETURN(s.build_scan_projection, GetStringVec(r));
  ASSIGN_OR_RETURN(s.build_scan_filter, GetOptionalExpr(r));
  ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > 10000) return Status::IOError("implausible build op count");
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
    if (kind > static_cast<uint8_t>(PlanOp::Kind::kJoinV2)) {
      return Status::IOError("bad plan op kind");
    }
    // A nested kJoin recurses one level deeper; JoinSpec::Deserialize
    // bounds that with kMaxPlanDepth. Whether a breaker is *allowed* in a
    // build pipeline is the executor's call, not the parser's.
    ASSIGN_OR_RETURN(
        PlanOp op,
        DeserializePlanOpBody(static_cast<PlanOp::Kind>(kind), r, depth + 1));
    s.build_ops.push_back(std::move(op));
  }
  ASSIGN_OR_RETURN(s.build_exchange, ExchangeSpec::Deserialize(r));
  return s;
}

void PlanOp::Serialize(BinaryWriter* w) const {
  // A join with non-default strategy/ordinal needs the extended tag: the
  // v1 kJoin layout is frozen (see the serialization contract), so the
  // extra fields ride under kJoinV2 instead of trailing the old form.
  Kind tag = kind;
  if (kind == Kind::kJoin &&
      (join->strategy != JoinStrategy::kPartitioned ||
       join->build_ordinal != 0)) {
    tag = Kind::kJoinV2;
  }
  w->PutU8(static_cast<uint8_t>(tag));
  switch (kind) {
    case Kind::kFilter:
      expr->Serialize(w);
      break;
    case Kind::kMap:
      expr->Serialize(w);
      w->PutString(name);
      break;
    case Kind::kSelect:
      w->PutVarint(exprs.size());
      for (size_t i = 0; i < exprs.size(); ++i) {
        exprs[i]->Serialize(w);
        w->PutString(names[i]);
      }
      break;
    case Kind::kExchange:
      exchange->Serialize(w);
      break;
    case Kind::kAggregate:
      PutStringVec(w, group_by);
      w->PutVarint(aggs.size());
      for (const auto& a : aggs) a.Serialize(w);
      break;
    case Kind::kJoin:
    case Kind::kJoinV2:  // In-memory kind is always kJoin.
      if (tag == Kind::kJoinV2) {
        w->PutU8(static_cast<uint8_t>(join->strategy));
        w->PutVarint(static_cast<uint64_t>(join->build_ordinal));
      }
      join->Serialize(w);
      break;
  }
}

Result<PlanOp> PlanOp::Deserialize(BinaryReader* r) {
  ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind > static_cast<uint8_t>(Kind::kJoinV2)) {
    return Status::IOError("bad plan op kind");
  }
  return DeserializePlanOpBody(static_cast<Kind>(kind), r, 0);
}

namespace {

Result<PlanOp> DeserializePlanOpBody(PlanOp::Kind kind, BinaryReader* r,
                                     int depth) {
  using Kind = PlanOp::Kind;
  PlanOp op;
  op.kind = kind;
  switch (op.kind) {
    case Kind::kFilter: {
      ASSIGN_OR_RETURN(op.expr, engine::Expr::Deserialize(r));
      break;
    }
    case Kind::kMap: {
      ASSIGN_OR_RETURN(op.expr, engine::Expr::Deserialize(r));
      ASSIGN_OR_RETURN(op.name, r->GetString());
      break;
    }
    case Kind::kSelect: {
      ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
      if (n > 100000) return Status::IOError("implausible select width");
      for (uint64_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(engine::ExprPtr e, engine::Expr::Deserialize(r));
        ASSIGN_OR_RETURN(std::string name, r->GetString());
        op.exprs.push_back(std::move(e));
        op.names.push_back(std::move(name));
      }
      break;
    }
    case Kind::kExchange: {
      ASSIGN_OR_RETURN(ExchangeSpec spec, ExchangeSpec::Deserialize(r));
      op.exchange = std::move(spec);
      break;
    }
    case Kind::kAggregate: {
      ASSIGN_OR_RETURN(op.group_by, GetStringVec(r));
      ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
      if (n > 100000) return Status::IOError("implausible agg count");
      for (uint64_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(engine::AggSpec a,
                         engine::AggSpec::Deserialize(r));
        op.aggs.push_back(std::move(a));
      }
      break;
    }
    case Kind::kJoin: {
      ASSIGN_OR_RETURN(JoinSpec spec, JoinSpec::Deserialize(r, depth));
      op.join = std::move(spec);
      break;
    }
    case Kind::kJoinV2: {
      ASSIGN_OR_RETURN(uint8_t strategy, r->GetU8());
      if (strategy > static_cast<uint8_t>(JoinStrategy::kBroadcast)) {
        return Status::IOError("bad join strategy");
      }
      ASSIGN_OR_RETURN(uint64_t ordinal, r->GetVarint());
      if (ordinal > 10000) {
        return Status::IOError("implausible join ordinal");
      }
      ASSIGN_OR_RETURN(JoinSpec spec, JoinSpec::Deserialize(r, depth));
      spec.strategy = static_cast<JoinStrategy>(strategy);
      spec.build_ordinal = static_cast<int>(ordinal);
      op.kind = PlanOp::Kind::kJoin;  // Normalize the wire-only tag.
      op.join = std::move(spec);
      break;
    }
  }
  return op;
}

}  // namespace

void ScanTuning::Serialize(BinaryWriter* w) const {
  w->PutU32(static_cast<uint32_t>(row_group_parallelism));
  w->PutU32(static_cast<uint32_t>(column_fetch_parallelism));
  w->PutU64(static_cast<uint64_t>(chunk_bytes));
  w->PutU32(static_cast<uint32_t>(connections_per_read));
  w->PutU8(prefetch_metadata ? 1 : 0);
  w->PutU64(static_cast<uint64_t>(coalesce_gap_bytes));
}

Result<ScanTuning> ScanTuning::Deserialize(BinaryReader* r) {
  ScanTuning t;
  ASSIGN_OR_RETURN(uint32_t rgp, r->GetU32());
  t.row_group_parallelism = static_cast<int>(rgp);
  ASSIGN_OR_RETURN(uint32_t cfp, r->GetU32());
  t.column_fetch_parallelism = static_cast<int>(cfp);
  ASSIGN_OR_RETURN(uint64_t cb, r->GetU64());
  t.chunk_bytes = static_cast<int64_t>(cb);
  ASSIGN_OR_RETURN(uint32_t conns, r->GetU32());
  t.connections_per_read = static_cast<int>(conns);
  ASSIGN_OR_RETURN(uint8_t pf, r->GetU8());
  t.prefetch_metadata = pf != 0;
  ASSIGN_OR_RETURN(uint64_t gap, r->GetU64());
  t.coalesce_gap_bytes = static_cast<int64_t>(gap);
  return t;
}

std::vector<uint8_t> PlanFragment::Serialize() const {
  BinaryWriter w;
  PutStringVec(&w, scan_projection);
  PutOptionalExpr(&w, scan_filter);
  w.PutVarint(ops.size());
  for (const auto& op : ops) op.Serialize(&w);
  tuning.Serialize(&w);
  return w.Take();
}

Result<PlanFragment> PlanFragment::Deserialize(const uint8_t* data,
                                               size_t size) {
  BinaryReader r(data, size);
  PlanFragment f;
  ASSIGN_OR_RETURN(f.scan_projection, GetStringVec(&r));
  ASSIGN_OR_RETURN(f.scan_filter, GetOptionalExpr(&r));
  ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > 10000) return Status::IOError("implausible op count");
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(PlanOp op, PlanOp::Deserialize(&r));
    f.ops.push_back(std::move(op));
  }
  ASSIGN_OR_RETURN(f.tuning, ScanTuning::Deserialize(&r));
  if (r.remaining() != 0) return Status::IOError("plan trailing bytes");
  return f;
}

}  // namespace lambada::core
