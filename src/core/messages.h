#ifndef LAMBADA_CORE_MESSAGES_H_
#define LAMBADA_CORE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "engine/scan.h"
#include "obs/metrics.h"

namespace lambada::core {

// The binary formats below follow the serialization contract stated in
// core/plan.h: discriminator tags are append-only and never renumbered,
// the field sequence of a released message is frozen (extending one means
// appending fields *and* bumping no tag — driver and workers always run
// the same build, and Parse rejects trailing bytes, so a mismatch is a
// loud error, not silent misinterpretation), and readers bounds-check
// every tag and count they consume.

/// The work assignment of one worker: its id and input files. Everything
/// that differs per worker MUST live here — first-generation workers of
/// the invocation tree rebuild their children's payloads from their own
/// (core/worker.cc), swapping in only the child's WorkerInput.
struct WorkerInput {
  uint32_t worker_id = 0;
  std::vector<engine::FileRef> files;
  /// Build-relation files of a join fragment (often empty: the build
  /// relation usually has fewer files than workers). With multiple joins
  /// this is the concatenation of every join's list, in build-ordinal
  /// order.
  std::vector<engine::FileRef> build_files;
  /// Slice lengths of `build_files` per join ordinal (multi-join
  /// fragments). Empty = every build file belongs to ordinal 0, the
  /// single-join layout.
  std::vector<uint32_t> build_counts;
  /// Which invocation attempt this is for `worker_id` (0 = first). The
  /// driver bumps it when it speculatively re-invokes a straggler or
  /// re-invokes a crashed worker; the worker echoes it in ResultMessage so
  /// the driver can dedup at-least-once deliveries by (worker_id, attempt).
  uint32_t attempt = 0;

  void Serialize(BinaryWriter* w) const;
  static Result<WorkerInput> Deserialize(BinaryReader* r);
};

/// N-level invocation-tree assignment (core/invocation_tree.h), riding in
/// a payload as an appended section: a worker's claimed contiguous ID
/// range, its generation, and the tree shape — everything it needs to
/// derive and invoke its child subtrees locally. Inactive (generation 0)
/// on legacy payloads, whose bytes stay exactly as released; with
/// invocation batching `inputs_key` points at the per-worker input table
/// in the plan bucket, so one gen-k call carries a whole ID range instead
/// of every descendant's WorkerInput.
struct TreeAssignment {
  /// Exclusive end of this worker's claimed range [self.worker_id, end).
  uint32_t subtree_end = 0;
  /// 1-based generation; 0 = inactive (legacy explicit-to_invoke layout).
  uint32_t generation = 0;
  /// Tree shape (TreePlan::fanout); size() is the depth.
  std::vector<uint32_t> fanout;
  /// S3 key of the worker-input table in plan_bucket; empty = the inputs
  /// already ride in the payloads (fleets with no per-worker files).
  std::string inputs_key;

  bool active() const { return generation != 0; }
};

/// The invocation payload of a serverless worker (Section 3.3). The plan
/// fragment itself lives in S3 (payloads are limited to 256 KB); the
/// payload carries the pointer, this worker's inputs, and — for
/// first-generation workers of the invocation tree (Section 4.2) — the
/// list of second-generation workers to invoke before starting.
struct InvocationPayload {
  std::string query_id;
  uint32_t total_workers = 1;
  std::string plan_bucket;
  std::string plan_key;
  std::string result_queue;
  WorkerInput self;
  std::vector<WorkerInput> to_invoke;
  /// Virtual-scaling factor applied to modeled data sizes and CPU work
  /// (see DESIGN.md); 1.0 outside scaled experiments.
  double data_scale = 1.0;
  /// Whether workers should hedge slow object-store GETs (RunOptions
  /// knob, threaded through the payload so the whole fleet agrees).
  bool hedge_gets = false;
  /// Invocation-tree assignment; serialized only when active, as an
  /// appended section (legacy payloads keep their released bytes).
  TreeAssignment tree;

  std::string Serialize() const;
  static Result<InvocationPayload> Parse(const std::string& bytes);
};

/// Per-worker execution metrics shipped back in the result message: a
/// metrics registry keyed by the stable ids of src/obs/metrics.h (the id IS
/// the wire tag — append-only, never renumbered — so the registry's
/// sparse (id, value) encoding honors the contract above). The accessors
/// cover what the driver and benches read; byte counters hold MODELED
/// bytes (virtual scaling applied), the units of the latencies and costs
/// beside them.
struct WorkerResultMetrics {
  obs::MetricsRegistry registry;

  /// Virtual seconds executing the plan fragment.
  double processing_time_s() const {
    return registry.gauge(obs::Metric::kProcessingTime);
  }
  /// Rows decoded by every scan of the fragment (both scans of a join).
  int64_t rows_scanned() const {
    return registry.counter(obs::Metric::kRowsScanned);
  }
  int64_t rows_emitted() const {
    return registry.counter(obs::Metric::kRowsEmitted);
  }
  int64_t row_groups_total() const {
    return registry.counter(obs::Metric::kRowGroupsTotal);
  }
  int64_t row_groups_pruned() const {
    return registry.counter(obs::Metric::kRowGroupsPruned);
  }
  /// Join output rows (0 for single-table fragments).
  int64_t rows_joined() const {
    return registry.counter(obs::Metric::kRowsJoined);
  }
  /// Exchange traffic across every exchange this worker ran (a join
  /// fragment runs two); mirrors core::ExchangeMetrics.
  int64_t exchange_rounds() const {
    return registry.counter(obs::Metric::kExchangeRounds);
  }
  int64_t exchange_put_requests() const {
    return registry.counter(obs::Metric::kExchangePutRequests);
  }
  int64_t exchange_get_requests() const {
    return registry.counter(obs::Metric::kExchangeGetRequests);
  }
  int64_t exchange_list_requests() const {
    return registry.counter(obs::Metric::kExchangeListRequests);
  }
  /// Post-encoding bytes fetched by the scans (footers + coalesced
  /// column-chunk extents) — the quantity the encoding/chunk-size work
  /// optimizes, reported so BENCH figures can show it directly.
  int64_t scan_bytes_moved() const {
    return registry.counter(obs::Metric::kScanBytesMoved);
  }
  int64_t rows_dict_filtered() const {
    return registry.counter(obs::Metric::kRowsDictFiltered);
  }
  int64_t exchange_bytes_written() const {
    return registry.counter(obs::Metric::kExchangeBytesWritten);
  }
  int64_t exchange_bytes_read() const {
    return registry.counter(obs::Metric::kExchangeBytesRead);
  }
  /// Fault-tolerance telemetry (mirrors cloud::RequestStats), so the
  /// straggler bench can attribute mitigation wins per attempt.
  int64_t s3_retries() const {
    return registry.counter(obs::Metric::kS3Retries);
  }
  int64_t hedged_requests() const {
    return registry.counter(obs::Metric::kHedgedRequests);
  }
  int64_t hedge_wins() const {
    return registry.counter(obs::Metric::kHedgeWins);
  }

  void Serialize(BinaryWriter* w) const;
  static Result<WorkerResultMetrics> Deserialize(BinaryReader* r);
};

/// The message a worker posts to the result queue when it finishes or
/// fails (Section 3.3). Large results spill to S3 and are referenced by
/// pointer (SQS messages are limited to 256 KiB).
struct ResultMessage {
  std::string query_id;
  uint32_t worker_id = 0;
  /// Status of the worker's execution engine.
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  WorkerResultMetrics metrics;
  /// Inline partial result (serialized chunk), or empty if spilled.
  std::vector<uint8_t> inline_result;
  /// Set if the result was spilled to S3.
  std::string spill_bucket;
  std::string spill_key;
  /// Echo of WorkerInput::attempt; the driver keys its first-result-wins
  /// dedup on (worker_id, attempt).
  uint32_t attempt = 0;

  std::string Serialize() const;
  static Result<ResultMessage> Parse(const std::string& bytes);
};

}  // namespace lambada::core

#endif  // LAMBADA_CORE_MESSAGES_H_
