#ifndef LAMBADA_CORE_DRIVER_H_
#define LAMBADA_CORE_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud.h"
#include "core/dataflow.h"
#include "exec/exec_context.h"
#include "core/invocation_tree.h"
#include "core/messages.h"
#include "core/optimizer.h"
#include "core/planner.h"
#include "engine/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/async.h"

namespace lambada::cloud {
class MetadataCache;
}  // namespace lambada::cloud

namespace lambada::core {

/// Driver-side configuration (Section 3.1: "the driver runs on the local
/// development machine of the data scientist").
struct DriverOptions {
  /// Bucket holding plans and spilled results; created at install time.
  std::string system_bucket = "lambada-system";
  /// SQS queue the workers report to.
  std::string result_queue = "lambada-results";
  /// Functions are named "{function_prefix}{memory_mib}".
  std::string function_prefix = "lambada-w";
  /// Concurrent invocation threads (the paper uses 128, Section 4.2).
  int invoke_threads = 128;
  /// Start workers through the invocation tree (Section 4.2) instead of
  /// invoking every worker from the driver.
  bool two_level_invocation = true;
  /// Invocation-tree depth: 0 picks the depth with the best modeled
  /// all-running time from the fleet size and the invoker profile
  /// (core/invocation_tree.h) — fleets of <= 4 workers stay driver-direct
  /// and two-level plans reproduce the historical sqrt grouping
  /// byte-for-byte; 1..3 force a depth. Ignored when two_level_invocation
  /// is false (always depth 1).
  int invocation_tree_depth = 0;
  /// Invocation batching: payloads carry a contiguous subtree ID range
  /// plus a pointer to the per-worker input table in S3 instead of every
  /// child's explicit WorkerInput. 0 = auto (trees deeper than two levels
  /// need it; two-level fleets keep their historical explicit payloads),
  /// 1 = batch two-level fleets too, -1 = never (clamps the tree to two
  /// levels).
  int invocation_batching = 0;
  /// SQS long-poll wait per receive call.
  double result_poll_wait_s = 1.0;
  double query_timeout_s = 3600.0;
  int invoke_retries = 8;
  /// Default exchange buckets created at install.
  int exchange_buckets = 10;
  std::string exchange_bucket_prefix = "lambada-x";
  /// Morsel-runtime knobs applied to every worker this driver starts
  /// (host-side configuration, never in payloads). The serial default
  /// reproduces the single-threaded virtual-time schedule exactly; other
  /// settings change timing only — results are byte-identical.
  exec::ExecContext worker_exec;
  /// Serving mode (core/session_manager.h): each query collects results on
  /// its own SQS queue (concurrent queries over one deployment would
  /// otherwise steal each other's messages), worker metrics are sliced by
  /// query id, and partials merge in worker order. Off by default — the
  /// solo driver keeps its historical schedules byte-for-byte.
  bool serving_mode = false;
  /// Optional warm metadata cache consulted for driver-side LISTs
  /// (serving mode; see docs/SERVING.md).
  cloud::MetadataCache* meta_cache = nullptr;
};

/// Straggler and crash mitigation policy of the driver's result-wait
/// loop. Disabled by default: the fault-free fast path then takes the
/// exact pre-mitigation schedule (arrival-order merge, no extra draws).
struct MitigationOptions {
  bool enabled = false;
  /// Fleet completion quantile that arms the per-worker progress
  /// deadline: once `quantile` of the fleet has reported, the stragglers
  /// get a budget derived from the fleet's own pace.
  double quantile = 0.5;
  /// Budget = max(min_deadline_s, multiplier * elapsed-at-crossing).
  double straggler_multiplier = 3.0;
  double min_deadline_s = 5.0;
  /// Maximum invocation attempts per worker, including the first.
  int max_attempts = 3;
  /// With no new result for this long, every missing worker is re-invoked
  /// regardless of the quantile state (covers crashes before the quantile
  /// arms, e.g. a dead first-generation invoker).
  double stall_timeout_s = 30.0;
  /// Derive quantile / min_deadline_s / stall_timeout_s from the fleet's
  /// modeled start skew (models::TreeStartSkew) instead of the fixed
  /// values above: big trees take longer to merely start, so fixed knobs
  /// either fire on healthy deep fleets or sleep through dead branches.
  /// Off by default — the fixed knobs then apply unchanged.
  bool fleet_aware = false;
  /// Re-invoke a silent tree branch (no results from any worker in its
  /// claimed ID range) through its gen-1/gen-2 invoker with a fresh
  /// attempt id, instead of re-invoking every member individually — a
  /// lost branch costs one Invoke call and ~branch-size re-runs, never a
  /// fleet restart. First-result-wins dedup and attempt-stable exchange
  /// slice keys make the recovered branch byte-identical. Off by default.
  bool subtree_recovery = false;
};

/// Distributed-tracing knobs (docs/OBSERVABILITY.md). Tracing draws no
/// randomness, sleeps no virtual time, and creates spans only from the
/// simulation thread, so enabling it changes neither results nor modeled
/// latency/cost, and the rendered trace is byte-identical across worker
/// thread counts and across identical (workload, seed) runs.
struct TraceOptions {
  bool enabled = false;
  /// If non-empty, the driver writes the Chrome trace_event JSON here
  /// after the query completes (open in chrome://tracing or Perfetto).
  std::string chrome_json_path;
};

/// Per-query execution knobs (the M and F of Section 5.2).
struct RunOptions {
  int memory_mib = 1792;
  /// Files per worker (F). Ignored when num_workers > 0.
  int files_per_worker = 1;
  /// Explicit worker count; 0 derives it from the file count and F.
  int num_workers = 0;
  ScanTuning tuning;
  /// Virtual-scaling factor forwarded to workers (DESIGN.md).
  double data_scale = 1.0;
  /// Consult the central min/max statistics index (core/stats_index.h)
  /// before fan-out, skipping files no worker needs to visit — the
  /// Section 5.3 extension. Join queries additionally feed the index's
  /// row counts and bounds to the cost-based optimizer as its catalog.
  bool use_stats_index = false;
  /// Per-join exchange strategy: kAuto lets the optimizer's cost model
  /// decide; the force settings exist for ablation benches.
  JoinStrategyOverride join_strategy = JoinStrategyOverride::kAuto;
  /// Straggler/crash mitigation (speculative re-invocation, progress
  /// deadlines, first-result-wins dedup).
  MitigationOptions mitigation;
  /// Workers hedge slow object-store GETs (duplicate request after the
  /// observed latency quantile, first response wins).
  bool hedge_gets = false;
  /// Query-scoped distributed tracing (off by default: zero overhead and
  /// bit-identical benches).
  TraceOptions trace;
  /// Per-query cost attribution ledger (serving mode). When set, every
  /// service request and worker-compute charge of this query is mirrored
  /// into it, and QueryReport::cost is its exact delta — the global-ledger
  /// snapshot diff is meaningless under concurrency.
  cloud::CostLedger* attribution = nullptr;
};

/// Everything the driver knows after a query: the result, end-to-end
/// latency, the pay-per-use bill, and per-worker telemetry.
struct QueryReport {
  engine::TableChunk result;
  double latency_s = 0;
  /// Time from Run() start until the last Invoke API call was issued.
  double invocation_issue_s = 0;
  int workers = 0;
  int files = 0;
  cloud::CostSnapshot cost;
  std::vector<ResultMessage> worker_results;
  /// Container-level timing (invocation, cold starts) per worker.
  std::vector<cloud::WorkerMetrics> worker_metrics;
  /// The optimizer's per-join strategy decisions (empty for single-table
  /// queries) and the deterministic plan rendering.
  std::vector<JoinChoice> join_choices;
  std::string explain_text;
  /// Fault-tolerance telemetry for imperfect runs. `total_attempts` counts
  /// invocation attempts across the fleet (== workers on a clean run);
  /// duplicates are at-least-once redeliveries (or superseded attempts)
  /// the dedup dropped; the s3/hedge counters are summed from the
  /// reporting attempt of each worker. Per-worker attempt timelines are
  /// in `worker_metrics` (WorkerMetrics::attempt).
  int64_t total_attempts = 0;
  int reinvoked_workers = 0;
  /// Branch re-invocations issued by subtree recovery; each restarted one
  /// silent gen-1/gen-2 subtree through its invoker.
  int subtree_reinvocations = 0;
  /// Invocation-tree shape this query ran with (1 = driver-direct) and
  /// whether payloads were batched (subtree ranges + input table).
  int tree_depth = 1;
  bool batched_invocation = false;
  int64_t duplicate_results = 0;
  int64_t worker_s3_retries = 0;
  int64_t hedged_gets = 0;
  int64_t hedge_wins = 0;
  /// Fleet-wide metrics: the merge of every reporting worker's registry
  /// (the winning attempt of each worker under mitigation). Always
  /// populated, tracing or not.
  obs::MetricsRegistry fleet_metrics;
  /// The query's trace when RunOptions::trace.enabled; null otherwise.
  /// trace_path is where the Chrome JSON was written (empty if not asked).
  std::shared_ptr<obs::Tracer> trace;
  std::string trace_path;
  /// EXPLAIN ANALYZE rendering: the optimizer's plan annotated with what
  /// actually happened (rows, modeled bytes, exchange traffic, attempts,
  /// virtual time per operator). See core/analyze.h.
  std::string explain_analyze_text;

  /// Total USD for this query at the deployment's prices.
  double CostUsd(const cloud::Pricing& pricing) const {
    return cost.TotalUsd(pricing);
  }
};

/// The Lambada driver: installs the serverless components once, then runs
/// queries by fanning out workers and collecting their partial results.
class Driver {
 public:
  explicit Driver(cloud::Cloud* cloud, DriverOptions options = {});

  /// One-time setup (Figure 2 "installation"): system bucket, result
  /// queue, metadata table, exchange buckets. Free of recurring cost.
  Status Install();

  /// Ensures the worker function for this memory size exists.
  Status EnsureFunction(int memory_mib);

  /// Forces cold starts for the given memory size (the paper re-creates
  /// the function between configurations).
  void ResetWarm(int memory_mib);

  /// Compiles and executes `query`; resolves when the final result is
  /// merged on the driver.
  sim::Async<Result<QueryReport>> Run(const Query& query,
                                      const RunOptions& options);

  /// Convenience wrapper: spawns Run() and drives the simulation to
  /// completion (for tools and tests that are not themselves coroutines).
  Result<QueryReport> RunToCompletion(const Query& query,
                                      const RunOptions& options);

  const DriverOptions& options() const { return options_; }
  cloud::Cloud* cloud() { return cloud_; }

 private:
  /// Invokes all `payloads` (worker_id -> full payload) through the
  /// invocation tree: depth-1 plans go out flat; deeper plans invoke the
  /// generation-1 roots, each carrying its children's WorkerInputs
  /// explicitly (legacy two-level layout) or, batched, just its subtree
  /// ID range plus `inputs_key`. Returns when every Invoke call was
  /// issued and accepted.
  sim::Async<Status> InvokeWorkers(
      const std::vector<InvocationPayload>& payloads, const TreePlan& tree,
      bool batched, const std::string& inputs_key,
      const std::string& function, cloud::CostLedger* attribution);

  sim::Async<Status> InvokeOne(const std::string& function,
                               std::string payload,
                               cloud::CostLedger* attribution);

  cloud::Cloud* cloud_;
  DriverOptions options_;
  bool installed_ = false;
  int64_t next_query_id_ = 0;
};

}  // namespace lambada::core

#endif  // LAMBADA_CORE_DRIVER_H_
