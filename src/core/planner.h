#ifndef LAMBADA_CORE_PLANNER_H_
#define LAMBADA_CORE_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataflow.h"
#include "core/plan.h"

namespace lambada::core {

/// One build relation a join query reads, in fragment join order (index ==
/// the join's build_ordinal). The driver expands the pattern and ships
/// per-worker build file lists: a contiguous split for a partitioned join,
/// the full list to every worker for a broadcast join.
struct BuildInput {
  std::string pattern;
  bool broadcast = false;
};

/// The optimizer's record of one join-strategy decision, surfaced for
/// reports, benches, and EXPLAIN. Costs are the modeled exchange-traffic
/// dollars of each alternative (0 when no stats were available and the
/// decision fell back to partitioned).
struct JoinChoice {
  std::string build_pattern;
  bool broadcast = false;
  /// Estimated inputs/output of this join (rows; 0 = unknown).
  double est_probe_rows = 0;
  double est_build_rows = 0;
  double est_output_rows = 0;
  /// Modeled traffic of the two alternatives.
  double partitioned_bytes = 0;
  double partitioned_usd = 0;
  double broadcast_bytes = 0;
  double broadcast_usd = 0;
};

/// The physical query produced by the planner: a serverless-scope fragment
/// (executed by every worker over its file subset) plus the driver-scope
/// finalization (Section 3.2).
struct PhysicalQuery {
  std::string pattern;          ///< Input file glob (probe side of a join).
  /// Build relations of a join query, one per kJoin op in fragment order;
  /// empty for single-table queries.
  std::vector<BuildInput> build_inputs;
  PlanFragment fragment;        ///< Worker-side plan.
  /// If the fragment ends in an aggregate, the driver merges partial
  /// states with these specs and finalizes; otherwise it concatenates the
  /// workers' row chunks.
  bool has_final_aggregate = false;
  std::vector<std::string> final_group_by;
  std::vector<engine::AggSpec> final_aggs;
  /// Driver-scope row ops applied to the finalized result (HAVING filters
  /// trailing the aggregate).
  std::vector<PlanOp> driver_ops;
  /// One entry per kJoin op (same order as build_inputs).
  std::vector<JoinChoice> join_choices;
  /// Deterministic plan rendering (see Query::Explain / SQL EXPLAIN).
  std::string explain_text;
};

/// Compiles a logical query into a physical one, applying the classic
/// rewrites the paper's framework performs on its intermediate
/// representation (Section 3.2):
///  * selection push-down: leading filters move into the scan, where they
///    both prune row groups via min/max statistics and run as the
///    residual predicate;
///  * projection push-down: only columns referenced anywhere downstream
///    are read from storage;
///  * data-parallel transformation: a terminal aggregate becomes
///    worker-side partial aggregation plus driver-side merge (trailing
///    filters after the aggregate run in the driver scope — HAVING);
///  * join distribution: queries with one or more JoinWith ops are
///    handed to the cost-based optimizer (core/optimizer.h), which
///    orders the joins and picks a partitioned or broadcast exchange per
///    join. Called without a catalog (as here), it preserves the query's
///    join order and the partitioned strategy. Push-downs apply to each
///    side's scan independently.
Result<PhysicalQuery> PlanQuery(const Query& query,
                                const ScanTuning& tuning = ScanTuning());

/// Resolves an adaptive chunk ("request") size from table statistics — the
/// Figure 7 tradeoff made into a rule. With one connection the request
/// latency is serial with the transfer, so chunks must reach ~16 MiB to
/// approach peak S3 bandwidth; k connections pipeline their first-byte
/// latencies and divide that requirement by k. Against that, requests
/// cost money and a worker scanning few post-encoding bytes gains nothing
/// from giant chunks, so the chunk also shrinks toward 1/8 of the bytes
/// one worker actually moves (keeping ~8 requests in flight to overlap
/// download with decompression), floored at 1 MiB where the request cost
/// line of Figure 7 starts to dominate the worker cost.
/// `scan_bytes_per_worker` <= 0 (unknown stats) yields the bandwidth-
/// saturating choice for the connection count.
int64_t AdaptiveChunkBytes(int64_t scan_bytes_per_worker, int connections);

}  // namespace lambada::core

#endif  // LAMBADA_CORE_PLANNER_H_
