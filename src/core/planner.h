#ifndef LAMBADA_CORE_PLANNER_H_
#define LAMBADA_CORE_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataflow.h"
#include "core/plan.h"

namespace lambada::core {

/// The physical query produced by the planner: a serverless-scope fragment
/// (executed by every worker over its file subset) plus the driver-scope
/// finalization (Section 3.2).
struct PhysicalQuery {
  std::string pattern;          ///< Input file glob (probe side of a join).
  /// Build-relation glob of a join query; empty for single-table queries.
  /// The driver expands it and ships per-worker build file lists.
  std::string build_pattern;
  PlanFragment fragment;        ///< Worker-side plan.
  /// If the fragment ends in an aggregate, the driver merges partial
  /// states with these specs and finalizes; otherwise it concatenates the
  /// workers' row chunks.
  bool has_final_aggregate = false;
  std::vector<std::string> final_group_by;
  std::vector<engine::AggSpec> final_aggs;
};

/// Compiles a logical query into a physical one, applying the classic
/// rewrites the paper's framework performs on its intermediate
/// representation (Section 3.2):
///  * selection push-down: leading filters move into the scan, where they
///    both prune row groups via min/max statistics and run as the
///    residual predicate;
///  * projection push-down: only columns referenced anywhere downstream
///    are read from storage;
///  * data-parallel transformation: a terminal aggregate becomes
///    worker-side partial aggregation plus driver-side merge;
///  * join distribution: a JoinWith becomes a two-sided partitioned
///    exchange — both inputs hash-partition on their join keys over the
///    same worker grid, so co-partitioned (probe, build) pairs meet on
///    one worker and the join runs locally there. Push-downs apply to
///    each side's scan independently.
Result<PhysicalQuery> PlanQuery(const Query& query,
                                const ScanTuning& tuning = ScanTuning());

}  // namespace lambada::core

#endif  // LAMBADA_CORE_PLANNER_H_
