#ifndef LAMBADA_CORE_PLANNER_H_
#define LAMBADA_CORE_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataflow.h"
#include "core/plan.h"

namespace lambada::core {

/// The physical query produced by the planner: a serverless-scope fragment
/// (executed by every worker over its file subset) plus the driver-scope
/// finalization (Section 3.2).
struct PhysicalQuery {
  std::string pattern;          ///< Input file glob (probe side of a join).
  /// Build-relation glob of a join query; empty for single-table queries.
  /// The driver expands it and ships per-worker build file lists.
  std::string build_pattern;
  PlanFragment fragment;        ///< Worker-side plan.
  /// If the fragment ends in an aggregate, the driver merges partial
  /// states with these specs and finalizes; otherwise it concatenates the
  /// workers' row chunks.
  bool has_final_aggregate = false;
  std::vector<std::string> final_group_by;
  std::vector<engine::AggSpec> final_aggs;
};

/// Compiles a logical query into a physical one, applying the classic
/// rewrites the paper's framework performs on its intermediate
/// representation (Section 3.2):
///  * selection push-down: leading filters move into the scan, where they
///    both prune row groups via min/max statistics and run as the
///    residual predicate;
///  * projection push-down: only columns referenced anywhere downstream
///    are read from storage;
///  * data-parallel transformation: a terminal aggregate becomes
///    worker-side partial aggregation plus driver-side merge;
///  * join distribution: a JoinWith becomes a two-sided partitioned
///    exchange — both inputs hash-partition on their join keys over the
///    same worker grid, so co-partitioned (probe, build) pairs meet on
///    one worker and the join runs locally there. Push-downs apply to
///    each side's scan independently.
Result<PhysicalQuery> PlanQuery(const Query& query,
                                const ScanTuning& tuning = ScanTuning());

/// Resolves an adaptive chunk ("request") size from table statistics — the
/// Figure 7 tradeoff made into a rule. With one connection the request
/// latency is serial with the transfer, so chunks must reach ~16 MiB to
/// approach peak S3 bandwidth; k connections pipeline their first-byte
/// latencies and divide that requirement by k. Against that, requests
/// cost money and a worker scanning few post-encoding bytes gains nothing
/// from giant chunks, so the chunk also shrinks toward 1/8 of the bytes
/// one worker actually moves (keeping ~8 requests in flight to overlap
/// download with decompression), floored at 1 MiB where the request cost
/// line of Figure 7 starts to dominate the worker cost.
/// `scan_bytes_per_worker` <= 0 (unknown stats) yields the bandwidth-
/// saturating choice for the connection count.
int64_t AdaptiveChunkBytes(int64_t scan_bytes_per_worker, int connections);

}  // namespace lambada::core

#endif  // LAMBADA_CORE_PLANNER_H_
