#include "core/logical_plan.h"

#include <algorithm>

namespace lambada::core {

using engine::BinaryOp;
using engine::Expr;
using engine::ExprPtr;

void CollectOpColumns(const PlanOp& op, std::set<std::string>* cols) {
  switch (op.kind) {
    case PlanOp::Kind::kFilter:
    case PlanOp::Kind::kMap:
      op.expr->CollectColumns(cols);
      break;
    case PlanOp::Kind::kSelect:
      for (const auto& e : op.exprs) e->CollectColumns(cols);
      break;
    case PlanOp::Kind::kExchange:
      for (const auto& k : op.exchange->keys) cols->insert(k);
      break;
    case PlanOp::Kind::kAggregate:
      for (const auto& g : op.group_by) cols->insert(g);
      for (const auto& a : op.aggs) {
        if (a.input != nullptr) a.input->CollectColumns(cols);
      }
      break;
    case PlanOp::Kind::kJoin:
    case PlanOp::Kind::kJoinV2:
      // Probe-side needs only: the build side has its own pipeline and is
      // planned separately.
      for (const auto& k : op.join->probe_keys) cols->insert(k);
      break;
  }
}

void CollectOpOutputs(const PlanOp& op, std::set<std::string>* produced) {
  switch (op.kind) {
    case PlanOp::Kind::kMap:
      produced->insert(op.name);
      break;
    case PlanOp::Kind::kSelect:
      for (const auto& n : op.names) produced->insert(n);
      break;
    case PlanOp::Kind::kAggregate:
      for (const auto& a : op.aggs) produced->insert(a.output_name);
      break;
    default:
      break;
  }
}

ExprPtr FoldLeadingFilters(const std::vector<PlanOp>& ops,
                           size_t* first_kept) {
  ExprPtr folded;
  while (*first_kept < ops.size() &&
         ops[*first_kept].kind == PlanOp::Kind::kFilter) {
    folded = folded == nullptr
                 ? ops[*first_kept].expr
                 : Expr::Binary(BinaryOp::kAnd, folded,
                                ops[*first_kept].expr);
    ++*first_kept;
  }
  return folded;
}

std::vector<std::string> PushdownProjection(
    const ExprPtr& scan_filter, const std::vector<PlanOp>& ops,
    const std::vector<std::string>& extra_columns) {
  std::set<std::string> referenced;
  if (scan_filter != nullptr) scan_filter->CollectColumns(&referenced);
  std::set<std::string> produced;
  for (const auto& op : ops) {
    std::set<std::string> cols;
    CollectOpColumns(op, &cols);
    for (const auto& c : cols) {
      if (produced.find(c) == produced.end()) referenced.insert(c);
    }
    CollectOpOutputs(op, &produced);
  }
  for (const auto& c : extra_columns) {
    if (produced.find(c) == produced.end()) referenced.insert(c);
  }
  return {referenced.begin(), referenced.end()};
}

bool IsRowOp(const PlanOp& op) {
  return op.kind == PlanOp::Kind::kFilter || op.kind == PlanOp::Kind::kMap ||
         op.kind == PlanOp::Kind::kSelect;
}

std::optional<std::set<std::string>> ClosedOutputSet(
    const std::vector<PlanOp>& ops) {
  std::optional<std::set<std::string>> closed;
  for (const auto& op : ops) {
    if (op.kind == PlanOp::Kind::kSelect) {
      closed.emplace(op.names.begin(), op.names.end());
    } else if (op.kind == PlanOp::Kind::kMap && closed.has_value()) {
      closed->insert(op.name);
    }
  }
  return closed;
}

Status ValidateKeysSurvive(const std::optional<std::set<std::string>>& closed,
                           const std::vector<std::string>& keys,
                           const char* side) {
  if (!closed.has_value()) return Status::OK();
  for (const auto& k : keys) {
    if (closed->find(k) == closed->end()) {
      return Status::Invalid(std::string("join ") + side + " key " + k +
                             " is dropped by a " + side + "-side Select");
    }
  }
  return Status::OK();
}

Result<std::optional<std::set<std::string>>> PlanBuildSide(JoinSpec* join) {
  size_t first_kept = 0;
  join->build_scan_filter = FoldLeadingFilters(join->build_ops, &first_kept);
  std::vector<PlanOp> kept(join->build_ops.begin() +
                               static_cast<std::ptrdiff_t>(first_kept),
                           join->build_ops.end());
  for (const auto& op : kept) {
    if (!IsRowOp(op)) {
      return Status::Invalid(
          "join build side supports only Filter/Map/Select operators");
    }
  }

  std::optional<std::set<std::string>> build_out = ClosedOutputSet(kept);
  RETURN_NOT_OK(ValidateKeysSurvive(build_out, join->build_keys, "build"));
  // With a closed output set the referenced columns are exactly what the
  // build scan must read; an open set still pushes the local references
  // (the build pipeline output *is* the scanned columns plus Map adds,
  // so nothing downstream can need an unscanned column... except when the
  // pipeline is empty and the join forwards every stored column). Scan
  // everything in the open case to stay correct.
  if (build_out.has_value()) {
    join->build_scan_projection = PushdownProjection(
        join->build_scan_filter, kept, join->build_keys);
  } else {
    join->build_scan_projection.clear();  // Read all columns.
  }
  join->build_ops = std::move(kept);
  join->build_exchange.keys = join->build_keys;
  return build_out;
}

Result<LogicalPlan> BuildLogicalPlan(const Query& query) {
  LogicalPlan plan;
  plan.relations.push_back(LogicalRelation{query.pattern(), {}});

  const auto& ops = query.ops();
  bool any_join = false;
  for (const auto& op : ops) {
    if (op.kind == PlanOp::Kind::kJoin) any_join = true;
  }

  bool seen_join = false;
  // Join-free queries may interleave exchanges with row ops; once the
  // first exchange appears the remaining chain is order-sensitive and
  // lands in `tail` wholesale.
  bool breaker_seen = false;
  for (size_t i = 0; i < ops.size(); ++i) {
    const PlanOp& op = ops[i];
    if (plan.aggregate.has_value()) {
      // Only HAVING-style filters may trail the aggregate; they run in
      // the driver scope against the finalized result.
      if (op.kind != PlanOp::Kind::kFilter) {
        return Status::Invalid("Aggregate must be the final operator");
      }
      plan.having.push_back(op);
      continue;
    }
    switch (op.kind) {
      case PlanOp::Kind::kJoin: {
        if (!plan.tail.empty()) {
          return Status::NotImplemented(
              "only filters may appear between joins");
        }
        const JoinSpec& spec = *op.join;
        LogicalJoinEdge edge;
        edge.build_relation = plan.relations.size();
        edge.probe_keys = spec.probe_keys;
        edge.build_keys = spec.build_keys;
        edge.type = spec.type;
        edge.exchange = spec.build_exchange;
        plan.relations.push_back(
            LogicalRelation{spec.build_pattern, spec.build_ops});
        plan.joins.push_back(std::move(edge));
        seen_join = true;
        break;
      }
      case PlanOp::Kind::kFilter:
        if (!seen_join && !breaker_seen) {
          plan.relations[0].ops.push_back(op);
        } else if (seen_join && plan.tail.empty()) {
          plan.filters.push_back(op.expr);
        } else {
          plan.tail.push_back(op);
        }
        break;
      case PlanOp::Kind::kMap:
      case PlanOp::Kind::kSelect:
        if (!seen_join && !breaker_seen) {
          plan.relations[0].ops.push_back(op);
        } else {
          plan.tail.push_back(op);
        }
        break;
      case PlanOp::Kind::kExchange:
        if (any_join) {
          return seen_join
                     ? Status::NotImplemented(
                           "explicit exchanges after a join are not "
                           "supported")
                     : Status::NotImplemented(
                           "only row-wise operators may precede a join");
        }
        breaker_seen = true;
        plan.tail.push_back(op);
        break;
      case PlanOp::Kind::kAggregate:
        plan.aggregate = op;
        break;
      case PlanOp::Kind::kJoinV2:
        return Status::Internal("kJoinV2 is a wire-only tag");
    }
  }
  return plan;
}

}  // namespace lambada::core
