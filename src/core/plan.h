#ifndef LAMBADA_CORE_PLAN_H_
#define LAMBADA_CORE_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "engine/aggregate.h"
#include "engine/expr.h"

namespace lambada::core {

/// Configuration of a serverless exchange (Section 4.4), carried inside a
/// plan fragment.
struct ExchangeSpec {
  /// Partition key column names (hash partitioning).
  std::vector<std::string> keys;
  /// 1 = BasicExchange, 2 = TwoLevelExchange, 3 = three-level.
  int levels = 2;
  /// Write all partitions of one sender into a single file (Section 4.4.3).
  bool write_combining = true;
  /// With write combining: encode part offsets in the file name and
  /// discover files via LIST (true), or write a separate offsets file and
  /// read it per sender (false).
  bool offsets_in_name = true;
  /// Intermediate files are spread over this many buckets
  /// ("{bucket_prefix}-{i}"), multiplying the S3 rate limit (Section 4.4.1).
  int num_buckets = 10;
  std::string bucket_prefix = "lambada-x";
  /// Unique id of this exchange instance (query id + operator id).
  std::string exchange_id;
  /// Receiver polling cadence and give-up horizon.
  double poll_interval_s = 0.05;
  double timeout_s = 600.0;

  void Serialize(BinaryWriter* w) const;
  static Result<ExchangeSpec> Deserialize(BinaryReader* r);
};

/// One operator applied to chunks after the scan, in order.
struct PlanOp {
  enum class Kind : uint8_t {
    kFilter = 0,     ///< Keep rows where `expr` is non-zero.
    kMap = 1,        ///< Append column `name` = `expr`.
    kSelect = 2,     ///< Narrow to `exprs` named `names`.
    kExchange = 3,   ///< Repartition across workers (pipeline breaker).
    kAggregate = 4,  ///< Grouped aggregation (terminal; workers emit
                     ///< partial state).
  };

  Kind kind = Kind::kFilter;
  // kFilter / kMap:
  engine::ExprPtr expr;
  std::string name;
  // kSelect:
  std::vector<engine::ExprPtr> exprs;
  std::vector<std::string> names;
  // kExchange:
  std::optional<ExchangeSpec> exchange;
  // kAggregate:
  std::vector<std::string> group_by;
  std::vector<engine::AggSpec> aggs;

  void Serialize(BinaryWriter* w) const;
  static Result<PlanOp> Deserialize(BinaryReader* r);
};

/// Tuning knobs of the scan operator carried with the plan (Section 4.3.2).
struct ScanTuning {
  int row_group_parallelism = 2;
  int column_fetch_parallelism = 4;
  int64_t chunk_bytes = 8 * 1024 * 1024;
  int connections_per_read = 1;
  bool prefetch_metadata = true;

  void Serialize(BinaryWriter* w) const;
  static Result<ScanTuning> Deserialize(BinaryReader* r);
};

/// The executable unit shipped to serverless workers: a scan (with pushed
/// projection/selection) followed by a linear pipeline of operators. This
/// is the "serverless scope" of the paper's query plans (Section 3.2); the
/// driver-side post-processing (merging partials) is the driver scope.
struct PlanFragment {
  std::vector<std::string> scan_projection;  ///< Empty = all columns.
  engine::ExprPtr scan_filter;               ///< May be null.
  std::vector<PlanOp> ops;
  ScanTuning tuning;

  /// True if the terminal operator is an aggregation (workers then emit
  /// partial aggregate state, merged by the driver).
  bool EndsInAggregate() const {
    return !ops.empty() && ops.back().kind == PlanOp::Kind::kAggregate;
  }

  std::vector<uint8_t> Serialize() const;
  static Result<PlanFragment> Deserialize(const uint8_t* data, size_t size);
};

}  // namespace lambada::core

#endif  // LAMBADA_CORE_PLAN_H_
