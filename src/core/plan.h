#ifndef LAMBADA_CORE_PLAN_H_
#define LAMBADA_CORE_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "engine/aggregate.h"
#include "engine/expr.h"
#include "engine/join.h"

namespace lambada::core {

// ---------------------------------------------------------------------------
// Serialization contract
// ---------------------------------------------------------------------------
// Plan fragments travel from the driver to workers through S3 (the payload
// carries only a pointer), so every struct below has a binary form. The
// rules that keep that form evolvable:
//
//  * **Tag compatibility.** Variant-like structs (PlanOp via its `kind`
//    byte, engine::Expr via its `Kind` byte) are discriminated by a
//    one-byte tag. Tags are append-only: a new operator or expression
//    claims the next unused value (kJoin took 5 after kAggregate's 4) and
//    existing tags are NEVER renumbered or reused, so any recorded plan
//    bytes keep meaning the same thing. Readers bounds-check the tag and
//    reject unknown values instead of guessing.
//  * **Fixed layout within a tag.** The field sequence serialized for one
//    tag is frozen once released. Extending an operator means a new tag
//    (e.g. a hypothetical kJoinV2), not new trailing fields on the old
//    one — readers consume exactly the fields they know, and
//    `PlanFragment::Deserialize` rejects trailing bytes, so silent
//    truncation or overhang is impossible.
//  * **Same-release pairing.** Driver and workers always run the same
//    build (the driver uploads the plan the moment it fans out), so there
//    is no cross-version skew to tolerate at runtime; the two rules above
//    exist so that *adding* operators like kJoin is a local, reviewable
//    change with a stated contract rather than an ad-hoc format edit.
//
// The same rules govern the SQS/Invoke messages in core/messages.h.

/// Maximum join-nesting depth a deserialized plan may have: a JoinSpec's
/// build_ops may themselves contain kJoin ops (each embedding another
/// JoinSpec), and this bounds that recursion. The limit exists so a
/// crafted or corrupted blob cannot drive the mutually recursive
/// deserializers into a stack overflow — parsing fails with a clean error
/// instead. Eight levels is far beyond what the optimizer emits (it plans
/// chained joins as a linear op sequence, not nested build pipelines).
inline constexpr int kMaxPlanDepth = 8;

/// Configuration of a serverless exchange (Section 4.4), carried inside a
/// plan fragment.
struct ExchangeSpec {
  /// Partition key column names (hash partitioning).
  std::vector<std::string> keys;
  /// 1 = BasicExchange, 2 = TwoLevelExchange, 3 = three-level.
  int levels = 2;
  /// Write all partitions of one sender into a single file (Section 4.4.3).
  bool write_combining = true;
  /// With write combining: encode part offsets in the file name and
  /// discover files via LIST (true), or write a separate offsets file and
  /// read it per sender (false).
  bool offsets_in_name = true;
  /// Intermediate files are spread over this many buckets
  /// ("{bucket_prefix}-{i}"), multiplying the S3 rate limit (Section 4.4.1).
  int num_buckets = 10;
  std::string bucket_prefix = "lambada-x";
  /// Unique id of this exchange instance (query id + operator id).
  std::string exchange_id;
  /// Receiver polling cadence and give-up horizon.
  double poll_interval_s = 0.05;
  double timeout_s = 600.0;

  void Serialize(BinaryWriter* w) const;
  static Result<ExchangeSpec> Deserialize(BinaryReader* r);
};

/// Tuning knobs of the scan operator carried with the plan (Section 4.3.2).
struct ScanTuning {
  int row_group_parallelism = 2;
  int column_fetch_parallelism = 4;
  /// Request ("chunk") size for splitting large reads. <= 0 means
  /// adaptive: the driver resolves it from the table's post-encoding
  /// bytes per worker and the connection count (AdaptiveChunkBytes,
  /// reproducing the Figure 7 tradeoff) before the plan is uploaded, so
  /// workers always deserialize a concrete positive value.
  int64_t chunk_bytes = 0;
  int connections_per_read = 1;
  bool prefetch_metadata = true;
  /// Row-group IO coalescing budget: a projected column chunk shares the
  /// preceding ranged read when that grows the read by at most this many
  /// bytes (see format::ReaderOptions). 0 disables.
  int64_t coalesce_gap_bytes = 1024 * 1024;

  void Serialize(BinaryWriter* w) const;
  static Result<ScanTuning> Deserialize(BinaryReader* r);
};

struct PlanOp;

/// How a join's build relation reaches the workers. The optimizer picks
/// per join from modeled exchange traffic (see core/optimizer.h).
enum class JoinStrategy : uint8_t {
  /// Two-sided partitioned exchange: both inputs hash-partition on their
  /// join keys over the same worker grid (the probe side through the
  /// kExchange op preceding the kJoin, the build side through
  /// `build_exchange`), so co-partitioned pairs meet on one worker.
  kPartitioned = 0,
  /// Broadcast: the driver ships the FULL build file list to every
  /// worker; each worker scans the whole build relation locally, so
  /// neither side runs an exchange round for this join.
  kBroadcast = 1,
};

/// Everything a kJoin operator carries: the join itself (type and key
/// pairs) plus the build side's complete scan pipeline. A join fragment is
/// therefore self-contained — one fragment, two scans. With the
/// kPartitioned strategy both sides go through hash exchanges on their
/// respective keys so that co-partitioned (probe, build) pairs land on the
/// same worker: the probe exchange is the regular kExchange op preceding
/// the kJoin, the build side's lives here as `build_exchange`. With
/// kBroadcast every worker scans the whole build relation and no exchange
/// runs for this join.
struct JoinSpec {
  engine::JoinType type = engine::JoinType::kInner;
  /// Equi-join key pairs: probe_keys[i] joins build_keys[i].
  std::vector<std::string> probe_keys;
  std::vector<std::string> build_keys;
  /// Build distribution strategy chosen by the optimizer.
  JoinStrategy strategy = JoinStrategy::kPartitioned;
  /// Ordinal of this join among the fragment's kJoin ops: selects which
  /// per-join build file list of the invocation payload feeds this join.
  int build_ordinal = 0;

  // -- Build-side input pipeline (the second scan of the fragment) --------
  /// Input file glob of the build relation. Logical-plan information: the
  /// driver expands it and ships concrete per-worker file lists in the
  /// invocation payload; workers never touch the pattern.
  std::string build_pattern;
  /// Projection/selection pushed into the build scan by the planner.
  std::vector<std::string> build_scan_projection;
  engine::ExprPtr build_scan_filter;  ///< May be null.
  /// Row-wise ops (filter/map/select only) applied to scanned build chunks
  /// before the build exchange.
  std::vector<PlanOp> build_ops;
  /// Hash exchange of the build rows on `build_keys` (planner-filled).
  ExchangeSpec build_exchange;

  void Serialize(BinaryWriter* w) const;
  /// `depth` is the number of JoinSpecs already being deserialized on the
  /// call stack; parsing fails once it reaches kMaxPlanDepth.
  static Result<JoinSpec> Deserialize(BinaryReader* r, int depth = 0);
};

/// One operator applied to chunks after the scan, in order.
///
/// Serialized as the one-byte kind tag followed by that kind's fixed field
/// sequence — see the serialization contract above before adding kinds.
struct PlanOp {
  enum class Kind : uint8_t {
    kFilter = 0,     ///< Keep rows where `expr` is non-zero.
    kMap = 1,        ///< Append column `name` = `expr`.
    kSelect = 2,     ///< Narrow to `exprs` named `names`.
    kExchange = 3,   ///< Repartition across workers (pipeline breaker).
    kAggregate = 4,  ///< Grouped aggregation (terminal; workers emit
                     ///< partial state).
    kJoin = 5,       ///< Hash join against a second scan pipeline
                     ///< (pipeline breaker; see JoinSpec).
    kJoinV2 = 6,     ///< Wire-only tag: kJoin plus an explicit strategy
                     ///< byte and build ordinal (the v1 tag's layout is
                     ///< frozen, so the extended form claimed the next
                     ///< tag). Normalized to kJoin on read; never the
                     ///< in-memory kind.
  };

  Kind kind = Kind::kFilter;
  // kFilter / kMap:
  engine::ExprPtr expr;
  std::string name;
  // kSelect:
  std::vector<engine::ExprPtr> exprs;
  std::vector<std::string> names;
  // kExchange:
  std::optional<ExchangeSpec> exchange;
  // kAggregate:
  std::vector<std::string> group_by;
  std::vector<engine::AggSpec> aggs;
  // kJoin:
  std::optional<JoinSpec> join;

  void Serialize(BinaryWriter* w) const;
  static Result<PlanOp> Deserialize(BinaryReader* r);
};

/// The executable unit shipped to serverless workers: a scan (with pushed
/// projection/selection) followed by a linear pipeline of operators. This
/// is the "serverless scope" of the paper's query plans (Section 3.2); the
/// driver-side post-processing (merging partials) is the driver scope.
/// A kJoin op embeds the build relation's scan pipeline (JoinSpec), so a
/// two-table fragment is still one linear `ops` chain on the probe side.
struct PlanFragment {
  std::vector<std::string> scan_projection;  ///< Empty = all columns.
  engine::ExprPtr scan_filter;               ///< May be null.
  std::vector<PlanOp> ops;
  ScanTuning tuning;

  /// True if the terminal operator is an aggregation (workers then emit
  /// partial aggregate state, merged by the driver).
  bool EndsInAggregate() const {
    return !ops.empty() && ops.back().kind == PlanOp::Kind::kAggregate;
  }

  /// Index of the first kJoin op, or -1 if this is a single-table
  /// fragment.
  int JoinIndex() const {
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == PlanOp::Kind::kJoin) return static_cast<int>(i);
    }
    return -1;
  }

  /// Indices of every kJoin op, in pipeline order (their build_ordinals).
  std::vector<size_t> JoinIndices() const {
    std::vector<size_t> out;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == PlanOp::Kind::kJoin) out.push_back(i);
    }
    return out;
  }

  std::vector<uint8_t> Serialize() const;
  static Result<PlanFragment> Deserialize(const uint8_t* data, size_t size);
};

}  // namespace lambada::core

#endif  // LAMBADA_CORE_PLAN_H_
