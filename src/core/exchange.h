#ifndef LAMBADA_CORE_EXCHANGE_H_
#define LAMBADA_CORE_EXCHANGE_H_

#include <string>
#include <vector>

#include "cloud/faas.h"
#include "common/status.h"
#include "core/plan.h"
#include "engine/table.h"
#include "obs/metrics.h"
#include "sim/async.h"

namespace lambada::core {

/// Timing breakdown of one exchange execution on one worker, mirroring the
/// phases of Figure 13 (per round: write, wait, read). Request and byte
/// counters live in the shared registry under the exchange.* names; bytes
/// here are REAL serialized bytes — the worker scales them by data_scale
/// when folding into its result metrics.
struct ExchangeMetrics {
  struct Round {
    double partition_s = 0;
    double write_s = 0;
    double wait_s = 0;
    double read_s = 0;
  };
  std::vector<Round> rounds;
  obs::MetricsRegistry registry;

  int64_t put_requests() const {
    return registry.counter(obs::Metric::kExchangePutRequests);
  }
  int64_t get_requests() const {
    return registry.counter(obs::Metric::kExchangeGetRequests);
  }
  int64_t list_requests() const {
    return registry.counter(obs::Metric::kExchangeListRequests);
  }
  /// Serialized partition bytes this worker uploaded / downloaded across
  /// all rounds — the exchange's share of the query's bytes moved.
  int64_t bytes_written() const {
    return registry.counter(obs::Metric::kExchangeBytesWritten);
  }
  int64_t bytes_read() const {
    return registry.counter(obs::Metric::kExchangeBytesRead);
  }
};

/// Decomposes P into `levels` near-equal factors whose product is exactly
/// P (the side lengths of the exchange grid). Exact factorization keeps
/// every grid cell occupied, so every per-phase target worker exists —
/// this is how the algorithm "works also for non-quadratic numbers of
/// workers" (Section 4.4.2). Fails if P has no usable factorization (e.g.,
/// a large prime for levels >= 2); the driver then adjusts P.
Result<std::vector<int>> FactorizeWorkers(int P, int levels);

/// Largest P' <= P that FactorizeWorkers accepts (with balance constraints)
/// for the given level count. Used by the driver to round worker counts.
int LargestFactorizableWorkerCount(int P, int levels);

/// Runs the serverless exchange operator (Algorithms 1-2) on worker `p` of
/// `P`: hash-partitions `input` by `spec.keys`, shuffles through S3 in
/// `spec.levels` rounds, and returns all rows whose hash partition is `p`.
///
/// Workers communicate only through the object store: writers PUT
/// partition files (optionally write-combined with offsets encoded in the
/// file name), readers poll (LIST or GET) until the senders' files exist.
///
/// `input` may be a schema-less empty chunk (zero columns): the worker
/// then still writes its (empty) slices every round — so no receiver ever
/// stalls waiting for it — and adopts the schema of whatever rows it
/// receives. This is what lets every worker of a join fragment join both
/// exchanges even when the build relation has fewer files than workers.
sim::Async<Result<engine::TableChunk>> RunExchange(
    cloud::WorkerEnv& env, const ExchangeSpec& spec, int p, int P,
    engine::TableChunk input, ExchangeMetrics* metrics = nullptr);

/// Creates the `spec.num_buckets` exchange buckets ("{prefix}-{i}") in the
/// object store. Done once at installation time ("this can be done at
/// installation time and does not induce costs", Section 4.4.1).
Status CreateExchangeBuckets(cloud::ObjectStore* s3,
                             const ExchangeSpec& spec);

/// Analytic request counts per Table 2, used by tests and the Figure 9
/// cost model: reads/writes/lists issued by ALL P workers together.
struct ExchangeRequestCounts {
  double reads = 0;
  double writes = 0;
  double lists = 0;
  int scans = 0;  ///< How many times the input is read+written.
};
ExchangeRequestCounts PredictExchangeRequests(int P, int levels,
                                              bool write_combining);

}  // namespace lambada::core

#endif  // LAMBADA_CORE_EXCHANGE_H_
