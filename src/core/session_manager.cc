#include "core/session_manager.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace lambada::core {

QueryService::QueryService(cloud::Cloud* cloud, ServingOptions options)
    : cloud_(cloud), options_(std::move(options)) {
  if (options_.cache_metadata) {
    meta_cache_ = std::make_unique<cloud::MetadataCache>(
        &cloud_->ddb(), &cloud_->s3(), options_.meta_table, &metrics_);
  }
  if (options_.share_scans) {
    scan_broker_ = std::make_unique<cloud::SharedScanBroker>(&cloud_->sim(),
                                                             &metrics_);
  }
  // Workers reach the shared layers host-side, like the tracer and the
  // fault injector: nothing serving-related ever rides in a payload.
  cloud_->faas().set_serving(meta_cache_.get(), scan_broker_.get());

  DriverOptions dopts;
  dopts.serving_mode = true;
  dopts.function_prefix = options_.function_prefix;
  dopts.result_queue = options_.result_queue;
  dopts.worker_exec = options_.worker_exec;
  dopts.meta_cache = meta_cache_.get();
  driver_ = std::make_unique<Driver>(cloud_, dopts);
}

Status QueryService::AddTenant(TenantOptions tenant) {
  if (tenant.id.empty()) {
    return Status::Invalid("tenant id must be non-empty");
  }
  if (tenants_.count(tenant.id) != 0) {
    return Status::Invalid("tenant '" + tenant.id + "' already registered");
  }
  Tenant t;
  t.opts = std::move(tenant);
  tenants_.emplace(t.opts.id, std::move(t));
  return Status::OK();
}

TenantUsage QueryService::Usage(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantUsage{} : it->second.usage;
}

bool QueryService::HasCapacity(const Tenant& t) const {
  return running_ < options_.max_concurrent &&
         t.usage.running < t.opts.max_concurrent;
}

void QueryService::Record(const std::string& tenant, uint64_t ticket,
                          const char* outcome, double submitted_s) {
  AdmissionEvent ev;
  ev.tenant = tenant;
  ev.ticket = ticket;
  ev.outcome = outcome;
  ev.submitted_s = submitted_s;
  ev.decided_s = cloud_->sim().Now();
  admission_log_.push_back(std::move(ev));
}

void QueryService::AdmitFromQueue() {
  // Oldest ticket first; a waiter whose tenant is saturated is skipped so
  // it cannot head-of-line-block other tenants. The scan order is a pure
  // function of ticket order and capacity state, hence deterministic.
  for (auto it = queue_.begin();
       it != queue_.end() && running_ < options_.max_concurrent;) {
    const std::shared_ptr<Waiter>& w = *it;
    if (w->expired) {
      it = queue_.erase(it);
      continue;
    }
    Tenant& t = tenants_.at(w->tenant);
    if (!HasCapacity(t)) {
      ++it;
      continue;
    }
    w->admitted = true;
    ++running_;
    ++t.usage.running;
    --t.usage.queued;
    Record(w->tenant, w->ticket, "admitted", w->submitted_s);
    w->event.Set();
    it = queue_.erase(it);
  }
}

sim::Async<Result<QueryReport>> QueryService::Submit(std::string tenant,
                                                     Query query,
                                                     RunOptions run_options) {
  auto sub = std::make_shared<Submission>(Submission{
      std::move(tenant), std::move(query), std::move(run_options)});
  return SubmitImpl(std::move(sub));
}

sim::Async<Result<QueryReport>> QueryService::SubmitImpl(
    std::shared_ptr<Submission> sub) {
  const std::string& tenant = sub->tenant;
  const double submitted_s = cloud_->sim().Now();
  const uint64_t ticket = next_ticket_++;
  auto tenant_it = tenants_.find(tenant);
  if (tenant_it == tenants_.end()) {
    Record(tenant, ticket, "rejected_unknown", submitted_s);
    metrics_.Add(obs::Metric::kRejectedQueries, 1);
    co_return Status::Invalid("unknown tenant '" + tenant + "'");
  }
  Tenant& t = tenant_it->second;

  if (t.usage.spent_usd >= t.opts.budget_usd) {
    ++t.usage.rejected;
    Record(tenant, ticket, "rejected_budget", submitted_s);
    metrics_.Add(obs::Metric::kRejectedQueries, 1);
    co_return Status::ResourceExhausted(
        "tenant '" + tenant + "' exhausted its cost budget ($" +
        std::to_string(t.usage.spent_usd) + " spent of $" +
        std::to_string(t.opts.budget_usd) + ")");
  }

  if (HasCapacity(t) && queue_.empty()) {
    ++running_;
    ++t.usage.running;
    Record(tenant, ticket, "admitted", submitted_s);
  } else {
    if (t.usage.queued >= t.opts.max_queue_depth) {
      ++t.usage.rejected;
      Record(tenant, ticket, "rejected_queue", submitted_s);
      metrics_.Add(obs::Metric::kRejectedQueries, 1);
      co_return Status::ResourceExhausted(
          "tenant '" + tenant + "' admission queue is full (" +
          std::to_string(t.usage.queued) + " waiting)");
    }
    auto waiter = std::make_shared<Waiter>(&cloud_->sim());
    waiter->tenant = tenant;
    waiter->ticket = ticket;
    waiter->submitted_s = submitted_s;
    queue_.push_back(waiter);
    ++t.usage.queued;
    metrics_.Add(obs::Metric::kQueuedQueries, 1);
    // Deadline watchdog. It owns a share of the waiter, so it stays safe
    // even when the Submit frame has long since been destroyed.
    sim::Spawn([](sim::Simulator* sim, std::shared_ptr<Waiter> w,
                  double deadline_s) -> sim::Async<void> {
      co_await sim::Sleep(sim, deadline_s);
      if (w->admitted || w->expired) co_return;
      w->expired = true;
      w->event.Set();
    }(&cloud_->sim(), waiter, t.opts.queue_deadline_s));
    co_await waiter->event.Wait();
    if (!waiter->admitted) {
      // Expired. AdmitFromQueue drops expired waiters it encounters, but
      // remove eagerly so the queue never reports phantom depth.
      queue_.erase(std::remove(queue_.begin(), queue_.end(), waiter),
                   queue_.end());
      --t.usage.queued;
      ++t.usage.rejected;
      Record(tenant, ticket, "expired", submitted_s);
      metrics_.Add(obs::Metric::kRejectedQueries, 1);
      co_return Status::DeadlineExceeded(
          "tenant '" + tenant + "' submission waited " +
          std::to_string(t.opts.queue_deadline_s) +
          "s in the admission queue");
    }
  }

  // ---- Run, with every charge mirrored into a per-query ledger. ----
  cloud::CostLedger attribution;
  RunOptions ro = sub->run_options;
  ro.attribution = &attribution;
  auto report = co_await driver_->Run(sub->query, ro);

  --running_;
  --t.usage.running;
  const double cost_usd =
      attribution.Snapshot().TotalUsd(cloud_->pricing());
  t.usage.spent_usd += cost_usd;
  if (report.ok()) {
    ++t.usage.served;
    metrics_.Add(obs::Metric::kServedQueries, 1);
  }
  AdmitFromQueue();
  co_return report;
}

}  // namespace lambada::core
