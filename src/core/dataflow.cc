#include "core/dataflow.h"

#include "core/optimizer.h"

namespace lambada::core {

Result<std::string> Query::Explain() const { return ExplainQuery(*this); }

Query Query::FromParquet(std::string pattern) {
  return Query(std::move(pattern));
}

Query Query::WithOp(PlanOp op) const {
  Query q = *this;
  q.ops_.push_back(std::move(op));
  return q;
}

Query Query::Filter(engine::ExprPtr predicate) const {
  PlanOp op;
  op.kind = PlanOp::Kind::kFilter;
  op.expr = std::move(predicate);
  return WithOp(std::move(op));
}

Query Query::Map(engine::ExprPtr expr, std::string name) const {
  PlanOp op;
  op.kind = PlanOp::Kind::kMap;
  op.expr = std::move(expr);
  op.name = std::move(name);
  return WithOp(std::move(op));
}

Query Query::Select(std::vector<engine::ExprPtr> exprs,
                    std::vector<std::string> names) const {
  LAMBADA_CHECK_EQ(exprs.size(), names.size());
  PlanOp op;
  op.kind = PlanOp::Kind::kSelect;
  op.exprs = std::move(exprs);
  op.names = std::move(names);
  return WithOp(std::move(op));
}

Query Query::Repartition(std::vector<std::string> keys,
                         ExchangeSpec spec) const {
  PlanOp op;
  op.kind = PlanOp::Kind::kExchange;
  spec.keys = std::move(keys);
  op.exchange = std::move(spec);
  return WithOp(std::move(op));
}

Query Query::JoinWith(const Query& build,
                      std::vector<std::string> probe_keys,
                      std::vector<std::string> build_keys,
                      engine::JoinType type, ExchangeSpec exchange) const {
  LAMBADA_CHECK(!probe_keys.empty());
  LAMBADA_CHECK_EQ(probe_keys.size(), build_keys.size());
  PlanOp op;
  op.kind = PlanOp::Kind::kJoin;
  JoinSpec spec;
  spec.type = type;
  spec.probe_keys = std::move(probe_keys);
  spec.build_keys = std::move(build_keys);
  spec.build_pattern = build.pattern();
  spec.build_ops = build.ops();
  spec.build_exchange = std::move(exchange);
  op.join = std::move(spec);
  return WithOp(std::move(op));
}

Query Query::Aggregate(std::vector<std::string> group_by,
                       std::vector<engine::AggSpec> aggs) const {
  PlanOp op;
  op.kind = PlanOp::Kind::kAggregate;
  op.group_by = std::move(group_by);
  op.aggs = std::move(aggs);
  return WithOp(std::move(op));
}

Query Query::ReduceSum(const std::string& column) const {
  return Aggregate({}, {engine::Sum(engine::Col(column), "sum")});
}

Query Query::ReduceCount() const {
  return Aggregate({}, {engine::Count("count")});
}

}  // namespace lambada::core
