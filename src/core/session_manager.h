#ifndef LAMBADA_CORE_SESSION_MANAGER_H_
#define LAMBADA_CORE_SESSION_MANAGER_H_

#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud.h"
#include "cloud/meta_cache.h"
#include "cloud/scan_share.h"
#include "core/driver.h"
#include "obs/metrics.h"
#include "sim/async.h"

namespace lambada::core {

/// Per-tenant admission policy of the query service (docs/SERVING.md).
struct TenantOptions {
  std::string id;
  /// Queries of this tenant running at once; excess submissions queue.
  int max_concurrent = 4;
  /// Cumulative spend ceiling. A submission arriving with the tenant at or
  /// over budget is rejected (typed ResourceExhausted naming the tenant);
  /// a query that crosses the ceiling mid-flight still completes.
  double budget_usd = std::numeric_limits<double>::infinity();
  /// Submissions waiting in the admission queue per tenant; excess is
  /// rejected instead of queued.
  int max_queue_depth = 64;
  /// Longest virtual-time wait in the admission queue before a queued
  /// submission gives up with DeadlineExceeded.
  double queue_deadline_s = 120.0;
};

/// Service-wide configuration.
struct ServingOptions {
  /// Queries running at once across all tenants.
  int max_concurrent = 16;
  /// Metadata cache in front of LIST + footer fetches (cloud/meta_cache.h).
  bool cache_metadata = true;
  /// Attach concurrent scans of one extent to a single in-flight GET
  /// (cloud/scan_share.h).
  bool share_scans = true;
  std::string meta_table = "lambada-meta-cache";
  /// Serving deployments get their own function family and result-queue
  /// namespace so a solo Driver next to a QueryService never collides.
  std::string function_prefix = "lambada-sw";
  std::string result_queue = "lambada-sw-results";
  /// Morsel-runtime knobs for every worker this service starts.
  exec::ExecContext worker_exec;
};

/// One admission decision, in decision order (deterministic virtual time).
struct AdmissionEvent {
  std::string tenant;
  uint64_t ticket = 0;
  /// "admitted", "rejected_budget", "rejected_queue", "expired",
  /// "rejected_unknown".
  std::string outcome;
  double submitted_s = 0;
  double decided_s = 0;
};

/// Live accounting for one tenant.
struct TenantUsage {
  int running = 0;
  int queued = 0;
  double spent_usd = 0;
  int64_t served = 0;
  int64_t rejected = 0;
};

/// Query-as-a-service front end (Section 6 discussion: amortizing the
/// serverless deployment over many users): admits N concurrent
/// Driver::Runs over one shared Cloud, enforcing per-tenant concurrency
/// and cost budgets, and wiring the two sharing layers — the metadata
/// cache and the shared-scan broker — into every worker it starts.
///
/// Admission is a deterministic FIFO over submission tickets: when a slot
/// frees, the oldest waiting submission whose tenant has capacity runs
/// (skipping over head-of-line waiters of saturated tenants). All state
/// changes happen on the simulator thread; there is no locking.
class QueryService {
 public:
  explicit QueryService(cloud::Cloud* cloud, ServingOptions options = {});

  /// Registers a tenant; Invalid on duplicate id.
  Status AddTenant(TenantOptions tenant);

  /// Submits one query for `tenant`. Resolves with the report once the
  /// query ran, or with a typed admission error:
  ///  - Invalid: unknown tenant;
  ///  - ResourceExhausted: tenant over budget or queue full (message names
  ///    the tenant);
  ///  - DeadlineExceeded: queued longer than queue_deadline_s.
  sim::Async<Result<QueryReport>> Submit(std::string tenant, Query query,
                                         RunOptions run_options);

  /// Tenant accounting (zero-value for unknown ids).
  TenantUsage Usage(const std::string& tenant) const;

  /// Every admission decision so far, in virtual-time order.
  const std::vector<AdmissionEvent>& admission_log() const {
    return admission_log_;
  }

  /// Serving counters (serving.*, meta_cache.*, shared_scan.*).
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  cloud::MetadataCache* meta_cache() { return meta_cache_.get(); }
  cloud::SharedScanBroker* scan_broker() { return scan_broker_.get(); }
  Driver& driver() { return *driver_; }
  int running() const { return running_; }

 private:
  struct Tenant {
    TenantOptions opts;
    TenantUsage usage;
  };

  /// One queued submission. Shared between the Submit frame and the
  /// deadline watchdog so neither dereferences a dead frame.
  struct Waiter {
    explicit Waiter(sim::Simulator* sim) : event(sim) {}
    std::string tenant;
    uint64_t ticket = 0;
    double submitted_s = 0;
    sim::Event event;
    bool admitted = false;
    bool expired = false;
  };

  /// Owned submission state. Submit's public aggregate parameters are
  /// repacked into one shared_ptr before the coroutine is entered: GCC 12
  /// fails to copy braced prvalue aggregates into coroutine frames (the
  /// frame aliases the caller's temporary and both run the destructor), so
  /// the coroutine only ever takes a well-behaved class-type parameter.
  struct Submission {
    std::string tenant;
    Query query;
    RunOptions run_options;
  };

  sim::Async<Result<QueryReport>> SubmitImpl(std::shared_ptr<Submission> sub);

  /// Admits queued submissions in ticket order while slots last.
  void AdmitFromQueue();
  bool HasCapacity(const Tenant& t) const;
  void Record(const std::string& tenant, uint64_t ticket,
              const char* outcome, double submitted_s);

  cloud::Cloud* cloud_;
  ServingOptions options_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<cloud::MetadataCache> meta_cache_;
  std::unique_ptr<cloud::SharedScanBroker> scan_broker_;
  std::unique_ptr<Driver> driver_;
  std::map<std::string, Tenant> tenants_;
  std::deque<std::shared_ptr<Waiter>> queue_;
  int running_ = 0;
  uint64_t next_ticket_ = 0;
  std::vector<AdmissionEvent> admission_log_;
};

}  // namespace lambada::core

#endif  // LAMBADA_CORE_SESSION_MANAGER_H_
