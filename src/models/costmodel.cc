#include "models/costmodel.h"

#include <cmath>

namespace lambada::models {

std::vector<JobScopedPoint> JobScopedIaas(const JobScopedParams& p) {
  std::vector<JobScopedPoint> out;
  for (int n = 1; n <= 256; n *= 2) {
    JobScopedPoint pt;
    pt.workers = n;
    double scan_s = p.data_bytes / (n * p.vm_scan_bytes_per_s);
    pt.running_time_s = p.vm_startup_s + scan_s;
    // VMs are billed from start-up through the scan.
    pt.cost_usd = n * p.vm_price_per_hour * pt.running_time_s / 3600.0;
    out.push_back(pt);
  }
  return out;
}

std::vector<JobScopedPoint> JobScopedFaas(const JobScopedParams& p) {
  std::vector<JobScopedPoint> out;
  for (int n = 8; n <= 4096; n *= 2) {
    JobScopedPoint pt;
    pt.workers = n;
    double scan_s = p.data_bytes / (n * p.faas_scan_bytes_per_s);
    pt.running_time_s = p.faas_startup_s + scan_s;
    // Functions are billed for execution only (start-up is the provider's).
    pt.cost_usd = n * p.faas_gib * scan_s * p.faas_price_per_gib_s;
    out.push_back(pt);
  }
  return out;
}

std::vector<AlwaysOnSeries> AlwaysOnComparison(const AlwaysOnParams& p) {
  std::vector<AlwaysOnSeries> out;
  auto flat = [&](const std::string& label, double hourly) {
    AlwaysOnSeries s;
    s.label = label;
    s.hourly_cost_usd.assign(p.queries_per_hour.size(), hourly);
    return s;
  };
  out.push_back(flat("13 VMs (S3)", p.s3_vms * p.s3_vm_price));
  out.push_back(flat("7 VMs (NVMe)", p.nvme_vms * p.nvme_vm_price));
  out.push_back(flat("3 VMs (DRAM)", p.dram_vms * p.dram_vm_price));
  AlwaysOnSeries qaas{"QaaS (S3)", {}};
  AlwaysOnSeries faas{"FaaS (S3)", {}};
  for (double qph : p.queries_per_hour) {
    qaas.hourly_cost_usd.push_back(p.qaas_per_query * qph);
    faas.hourly_cost_usd.push_back(p.faas_per_query * qph);
  }
  out.push_back(std::move(qaas));
  out.push_back(std::move(faas));
  return out;
}

namespace {

double PriceTraffic(TrafficEstimate* t, const ExchangeTrafficParams& p) {
  return t->put_requests * p.s3_put_usd + t->get_requests * p.s3_get_usd +
         t->bytes / p.worker_bytes_per_s * p.worker_usd_per_s;
}

}  // namespace

TrafficEstimate PartitionedExchangeTraffic(double probe_bytes,
                                           double build_bytes, int workers,
                                           int levels, bool write_combining,
                                           const ExchangeTrafficParams& p) {
  TrafficEstimate t;
  double P = workers < 1 ? 1.0 : static_cast<double>(workers);
  double L = levels < 1 ? 1.0 : static_cast<double>(levels);
  // Each round rewrites and rereads the full input of its side.
  t.bytes = 2.0 * L * (probe_bytes + build_bytes);
  // Table 2: with write combining each worker writes one file per round;
  // readers poll ~P^(1/levels) senders per round. Without combining the
  // writers fan out to the same per-round factor.
  double fanout = std::ceil(std::pow(P, 1.0 / L));
  double per_side_puts = write_combining ? L * P : L * P * fanout;
  double per_side_gets = L * P * fanout;
  t.put_requests = 2.0 * per_side_puts;
  t.get_requests = 2.0 * per_side_gets;
  t.usd = PriceTraffic(&t, p);
  return t;
}

TrafficEstimate BroadcastTraffic(double build_bytes, int64_t build_files,
                                 int workers,
                                 const ExchangeTrafficParams& p) {
  TrafficEstimate t;
  double P = workers < 1 ? 1.0 : static_cast<double>(workers);
  t.bytes = build_bytes * P;
  // Per worker and build file: one footer read plus one (coalesced) data
  // read. Coarse, but the request term only matters for tiny relations
  // where it correctly penalizes broadcasting many small files.
  t.get_requests = 2.0 * P * static_cast<double>(build_files < 0 ? 0 : build_files);
  t.usd = PriceTraffic(&t, p);
  return t;
}

namespace {

/// First and last worker start times of one tree shape. The driver issues
/// the generation-1 roots at min(rate cap, threads/latency); below a root
/// every level adds its serial child-invocation time plus one container
/// start, and the last worker hangs off the last root's longest chain.
struct TreeStartWindow {
  double first = 0;
  double last = 0;
};

TreeStartWindow TreeWindow(const std::vector<uint32_t>& fanout,
                           uint32_t workers,
                           const InvocationTreeParams& p) {
  TreeStartWindow w;
  if (workers == 0 || fanout.empty()) return w;
  const size_t depth = fanout.size();
  // Subtree capacities: cap[g] ids under one generation-g root (itself
  // included); leaves cover exactly themselves.
  std::vector<double> cap(depth + 1, 1.0);
  for (int g = static_cast<int>(depth) - 1; g >= 1; --g) {
    cap[g] = 1.0 + static_cast<double>(fanout[g]) * cap[g + 1];
  }
  double roots = depth == 1 ? static_cast<double>(workers)
                            : std::ceil(static_cast<double>(workers) / cap[1]);
  roots = std::min(roots, static_cast<double>(fanout[0]));
  roots = std::max(roots, 1.0);
  const double rate =
      std::min(p.driver_rate_per_s,
               static_cast<double>(std::max(1, p.driver_threads)) /
                   std::max(1e-9, p.driver_invoke_latency_s));
  w.first = p.driver_invoke_latency_s + p.worker_start_s;
  w.last = std::max(p.driver_invoke_latency_s, roots / rate) + p.worker_start_s;
  // A generation-g node invokes its children serially; the last child then
  // pays its own container start.
  for (size_t g = 1; g < depth; ++g) {
    if (fanout[g] == 0) continue;
    w.last += static_cast<double>(fanout[g]) * p.worker_invoke_latency_s +
              p.worker_start_s;
  }
  return w;
}

}  // namespace

double TreeAllRunningTime(const std::vector<uint32_t>& fanout,
                          uint32_t workers,
                          const InvocationTreeParams& p) {
  return TreeWindow(fanout, workers, p).last;
}

double TreeStartSkew(const std::vector<uint32_t>& fanout, uint32_t workers,
                     const InvocationTreeParams& p) {
  const TreeStartWindow w = TreeWindow(fanout, workers, p);
  return std::max(0.0, w.last - w.first);
}

}  // namespace lambada::models
