#include "models/costmodel.h"

namespace lambada::models {

std::vector<JobScopedPoint> JobScopedIaas(const JobScopedParams& p) {
  std::vector<JobScopedPoint> out;
  for (int n = 1; n <= 256; n *= 2) {
    JobScopedPoint pt;
    pt.workers = n;
    double scan_s = p.data_bytes / (n * p.vm_scan_bytes_per_s);
    pt.running_time_s = p.vm_startup_s + scan_s;
    // VMs are billed from start-up through the scan.
    pt.cost_usd = n * p.vm_price_per_hour * pt.running_time_s / 3600.0;
    out.push_back(pt);
  }
  return out;
}

std::vector<JobScopedPoint> JobScopedFaas(const JobScopedParams& p) {
  std::vector<JobScopedPoint> out;
  for (int n = 8; n <= 4096; n *= 2) {
    JobScopedPoint pt;
    pt.workers = n;
    double scan_s = p.data_bytes / (n * p.faas_scan_bytes_per_s);
    pt.running_time_s = p.faas_startup_s + scan_s;
    // Functions are billed for execution only (start-up is the provider's).
    pt.cost_usd = n * p.faas_gib * scan_s * p.faas_price_per_gib_s;
    out.push_back(pt);
  }
  return out;
}

std::vector<AlwaysOnSeries> AlwaysOnComparison(const AlwaysOnParams& p) {
  std::vector<AlwaysOnSeries> out;
  auto flat = [&](const std::string& label, double hourly) {
    AlwaysOnSeries s;
    s.label = label;
    s.hourly_cost_usd.assign(p.queries_per_hour.size(), hourly);
    return s;
  };
  out.push_back(flat("13 VMs (S3)", p.s3_vms * p.s3_vm_price));
  out.push_back(flat("7 VMs (NVMe)", p.nvme_vms * p.nvme_vm_price));
  out.push_back(flat("3 VMs (DRAM)", p.dram_vms * p.dram_vm_price));
  AlwaysOnSeries qaas{"QaaS (S3)", {}};
  AlwaysOnSeries faas{"FaaS (S3)", {}};
  for (double qph : p.queries_per_hour) {
    qaas.hourly_cost_usd.push_back(p.qaas_per_query * qph);
    faas.hourly_cost_usd.push_back(p.faas_per_query * qph);
  }
  out.push_back(std::move(qaas));
  out.push_back(std::move(faas));
  return out;
}

}  // namespace lambada::models
