#ifndef LAMBADA_MODELS_COSTMODEL_H_
#define LAMBADA_MODELS_COSTMODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lambada::models {

/// Analytic architecture-comparison models behind Figure 1 of the paper.
/// Figure 1 is itself "obtained through simulation", so these are faithful
/// re-implementations of that simulation with the paper's parameters.

/// One (cost, time) point of Figure 1a.
struct JobScopedPoint {
  int workers = 0;
  double running_time_s = 0;
  double cost_usd = 0;
};

/// Parameters of the Figure 1a simulation (footnotes 1-2): a query
/// scanning 1 TB from S3 with job-scoped resources.
struct JobScopedParams {
  double data_bytes = 1e12;
  // IaaS: c5n.xlarge instances.
  double vm_price_per_hour = 0.216;
  double vm_scan_bytes_per_s = 0.6e9;
  double vm_startup_s = 120.0;  // "2 min start-up time for IaaS".
  // FaaS: 2 GiB workers.
  double faas_gib = 2.0;
  double faas_scan_bytes_per_s = 89e6;  // ~85 MiB/s.
  double faas_startup_s = 4.0;          // "4 s for FaaS".
  double faas_price_per_gib_s = 1.65e-5;
};

/// Figure 1a, IaaS series (1..256 VMs, powers of two).
std::vector<JobScopedPoint> JobScopedIaas(const JobScopedParams& p = {});
/// Figure 1a, FaaS series (8..4096 concurrent invocations).
std::vector<JobScopedPoint> JobScopedFaas(const JobScopedParams& p = {});

/// One always-on configuration of Figure 1b.
struct AlwaysOnSeries {
  std::string label;
  /// Hourly cost at the given queries/hour (same length as `qph`).
  std::vector<double> hourly_cost_usd;
};

/// Parameters of Figure 1b (footnote 3): serve a 1 TB scan in under 10 s.
struct AlwaysOnParams {
  std::vector<double> queries_per_hour = {1, 2, 4, 8, 16, 32, 64};
  // 3x r5.12xlarge (DRAM), 7x i3.16xlarge (NVMe), 13x c5n.18xlarge (S3).
  int dram_vms = 3;
  double dram_vm_price = 3.024;
  int nvme_vms = 7;
  double nvme_vm_price = 4.992;
  int s3_vms = 13;
  double s3_vm_price = 3.888;
  /// QaaS: $5 per TiB scanned => ~$5 per query on 1 TB.
  double qaas_per_query = 5.0;
  /// FaaS: per-query cost of the Lambada-style scan (workers + requests).
  double faas_per_query = 0.40;
};

/// All five series of Figure 1b.
std::vector<AlwaysOnSeries> AlwaysOnComparison(const AlwaysOnParams& p = {});

// ---------------------------------------------------------------------------
// Exchange-traffic model (optimizer join costing)
// ---------------------------------------------------------------------------
// What the optimizer compares when it picks a join's exchange strategy:
// the S3 bytes and requests each alternative moves, priced with the
// request tariffs plus the worker-seconds spent pushing those bytes at
// the per-worker S3 bandwidth. All quantities are fleet totals.

struct ExchangeTrafficParams {
  double s3_put_usd = 5.0e-6;  ///< $5 per 1M PUT/LIST requests.
  double s3_get_usd = 4.0e-7;  ///< $0.4 per 1M GET requests.
  /// Per-worker S3 bandwidth; matches JobScopedParams::faas_scan_bytes_per_s.
  double worker_bytes_per_s = 89e6;
  /// $/worker-second: faas_gib * faas_price_per_gib_s of JobScopedParams.
  double worker_usd_per_s = 2.0 * 1.65e-5;
};

/// Modeled traffic of one strategy alternative.
struct TrafficEstimate {
  double bytes = 0;         ///< Bytes written + read through S3.
  double put_requests = 0;  ///< PUTs issued by all workers.
  double get_requests = 0;  ///< GETs issued by all workers.
  double usd = 0;           ///< Requests plus worker time on `bytes`.
};

/// A partitioned join's traffic: both sides traverse a `levels`-round
/// hash exchange over `workers` — every input byte is written and read
/// once per round, and the request counts follow Table 2 of the paper
/// (write-combined: levels*P PUTs and <= levels*P*ceil(P^(1/levels))
/// GETs per side; without combining the PUTs fan out like the GETs).
TrafficEstimate PartitionedExchangeTraffic(
    double probe_bytes, double build_bytes, int workers, int levels,
    bool write_combining, const ExchangeTrafficParams& p = {});

/// A broadcast join's traffic: every worker reads the whole build
/// relation (build_bytes * workers GETs-side bytes, ~2 requests per file
/// per worker for footer + data), and neither side runs an exchange.
TrafficEstimate BroadcastTraffic(double build_bytes, int64_t build_files,
                                 int workers,
                                 const ExchangeTrafficParams& p = {});

// ---------------------------------------------------------------------------
// Invocation-tree start-time model (Section 4.2 / Figure 5)
// ---------------------------------------------------------------------------
// When does the last worker of an N-level invocation tree start running?
// The driver picks the tree depth by minimizing this (core/invocation_tree),
// and the fleet-aware mitigation knobs scale with the first-to-last start
// spread it predicts. Defaults match the "eu" region of Table 1 and the
// FaaS cold-start parameters of cloud/faas.h.

struct InvocationTreeParams {
  /// Driver -> Invoke API call latency (WAN; Table 1 "Remote latency").
  double driver_invoke_latency_s = 0.036;
  /// Aggregate driver-side invocation rate cap (Table 1, ~294/s from
  /// Zurich regardless of thread count).
  double driver_rate_per_s = 294.0;
  /// Concurrent driver invocation threads (Section 4.2 uses 128).
  int driver_threads = 128;
  /// Invoke call latency from inside the region ("Intra-region rate").
  double worker_invoke_latency_s = 1.0 / 81.0;
  /// Cold container start plus dependency-layer init until the handler
  /// can issue its first child invoke.
  double worker_start_s = 0.9;
};

/// Modeled time until the LAST worker of the tree is running. `fanout`
/// follows core/invocation_tree.h: fanout[0] bounds the driver's direct
/// invocations (the generation-1 roots), fanout[g] bounds the children
/// one generation-g worker invokes serially; fanout.size() is the depth.
double TreeAllRunningTime(const std::vector<uint32_t>& fanout,
                          uint32_t workers,
                          const InvocationTreeParams& p = {});

/// Modeled spread between the first and the last worker start — the
/// start skew the fleet-size-aware mitigation knobs scale with (a stall
/// watchdog shorter than this would re-invoke workers that were never
/// late, just deep in the tree).
double TreeStartSkew(const std::vector<uint32_t>& fanout, uint32_t workers,
                     const InvocationTreeParams& p = {});

}  // namespace lambada::models

#endif  // LAMBADA_MODELS_COSTMODEL_H_
