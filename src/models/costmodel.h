#ifndef LAMBADA_MODELS_COSTMODEL_H_
#define LAMBADA_MODELS_COSTMODEL_H_

#include <string>
#include <vector>

namespace lambada::models {

/// Analytic architecture-comparison models behind Figure 1 of the paper.
/// Figure 1 is itself "obtained through simulation", so these are faithful
/// re-implementations of that simulation with the paper's parameters.

/// One (cost, time) point of Figure 1a.
struct JobScopedPoint {
  int workers = 0;
  double running_time_s = 0;
  double cost_usd = 0;
};

/// Parameters of the Figure 1a simulation (footnotes 1-2): a query
/// scanning 1 TB from S3 with job-scoped resources.
struct JobScopedParams {
  double data_bytes = 1e12;
  // IaaS: c5n.xlarge instances.
  double vm_price_per_hour = 0.216;
  double vm_scan_bytes_per_s = 0.6e9;
  double vm_startup_s = 120.0;  // "2 min start-up time for IaaS".
  // FaaS: 2 GiB workers.
  double faas_gib = 2.0;
  double faas_scan_bytes_per_s = 89e6;  // ~85 MiB/s.
  double faas_startup_s = 4.0;          // "4 s for FaaS".
  double faas_price_per_gib_s = 1.65e-5;
};

/// Figure 1a, IaaS series (1..256 VMs, powers of two).
std::vector<JobScopedPoint> JobScopedIaas(const JobScopedParams& p = {});
/// Figure 1a, FaaS series (8..4096 concurrent invocations).
std::vector<JobScopedPoint> JobScopedFaas(const JobScopedParams& p = {});

/// One always-on configuration of Figure 1b.
struct AlwaysOnSeries {
  std::string label;
  /// Hourly cost at the given queries/hour (same length as `qph`).
  std::vector<double> hourly_cost_usd;
};

/// Parameters of Figure 1b (footnote 3): serve a 1 TB scan in under 10 s.
struct AlwaysOnParams {
  std::vector<double> queries_per_hour = {1, 2, 4, 8, 16, 32, 64};
  // 3x r5.12xlarge (DRAM), 7x i3.16xlarge (NVMe), 13x c5n.18xlarge (S3).
  int dram_vms = 3;
  double dram_vm_price = 3.024;
  int nvme_vms = 7;
  double nvme_vm_price = 4.992;
  int s3_vms = 13;
  double s3_vm_price = 3.888;
  /// QaaS: $5 per TiB scanned => ~$5 per query on 1 TB.
  double qaas_per_query = 5.0;
  /// FaaS: per-query cost of the Lambada-style scan (workers + requests).
  double faas_per_query = 0.40;
};

/// All five series of Figure 1b.
std::vector<AlwaysOnSeries> AlwaysOnComparison(const AlwaysOnParams& p = {});

}  // namespace lambada::models

#endif  // LAMBADA_MODELS_COSTMODEL_H_
