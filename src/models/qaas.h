#ifndef LAMBADA_MODELS_QAAS_H_
#define LAMBADA_MODELS_QAAS_H_

#include <string>

namespace lambada::models {

/// Black-box models of the commercial Query-as-a-Service systems the paper
/// compares against (Section 5.4). Their pricing models are public and
/// reproduced exactly; their latencies are parametric curves anchored to
/// the paper's measured values.

/// Characteristics of a scan-heavy query against the LINEITEM table.
struct QaasQuery {
  /// Fraction of table bytes in the attributes the query touches.
  double used_column_fraction = 1.0;
  /// Fraction of rows the selection keeps.
  double row_selectivity = 1.0;
  /// Scale factor relative to TPC-H SF 1000 (1.0 = SF 1k, 10.0 = SF 10k).
  double sf_ratio = 1.0;
};

struct QaasEstimate {
  double latency_s = 0;
  double cost_usd = 0;
  double load_time_s = 0;  ///< One-time ETL (BigQuery only).
};

/// Amazon Athena: in-situ Parquet scans at $5/TiB of *selected rows* of
/// the used columns ("selections are pushed into the cost model").
/// Latency scales linearly with the dataset ("Athena does not seem to
/// dedicate more resources for the larger data sets").
class AthenaModel {
 public:
  /// `parquet_bytes_sf1k`: table size in Parquet at SF 1k (paper: 151 GiB).
  explicit AthenaModel(double parquet_bytes_sf1k = 151.0 * (1ull << 30))
      : parquet_bytes_sf1k_(parquet_bytes_sf1k) {}

  QaasEstimate Estimate(const QaasQuery& q, double base_latency_s) const;

 private:
  double parquet_bytes_sf1k_;
};

/// Google BigQuery: requires loading into a proprietary format (823 GiB at
/// SF 1k, "over 5x larger than our Parquet files"); $5/TiB of the *full*
/// used columns regardless of selection. Hot latency grows sublinearly
/// with scale; cold latency adds the load time (40 min at SF 1k, 6.7 h at
/// SF 10k).
class BigQueryModel {
 public:
  explicit BigQueryModel(double internal_bytes_sf1k = 823.0 * (1ull << 30))
      : internal_bytes_sf1k_(internal_bytes_sf1k) {}

  QaasEstimate Estimate(const QaasQuery& q, double base_latency_s) const;

 private:
  double internal_bytes_sf1k_;
};

/// The paper's measured anchor latencies at SF 1k (Section 5.4.2).
struct QaasAnchors {
  double athena_q1_s = 38.0;  ///< "Lambada ... about 4x faster for Q1".
  double athena_q6_s = 10.0;  ///< "on par for Q6".
  double bigquery_q1_s = 3.9;
  double bigquery_q6_s = 1.6;
};

}  // namespace lambada::models

#endif  // LAMBADA_MODELS_QAAS_H_
