#include "models/qaas.h"

#include <cmath>

namespace lambada::models {

namespace {
constexpr double kUsdPerTib = 5.0;
constexpr double kTib = 1024.0 * 1024.0 * 1024.0 * 1024.0;
}  // namespace

QaasEstimate AthenaModel::Estimate(const QaasQuery& q,
                                   double base_latency_s) const {
  QaasEstimate e;
  double scanned_bytes = parquet_bytes_sf1k_ * q.sf_ratio *
                         q.used_column_fraction * q.row_selectivity;
  e.cost_usd = scanned_bytes / kTib * kUsdPerTib;
  // Linear scaling with the dataset size, plus a small fixed overhead.
  e.latency_s = 2.0 + (base_latency_s - 2.0) * q.sf_ratio;
  e.load_time_s = 0;  // In-situ: no loading.
  return e;
}

QaasEstimate BigQueryModel::Estimate(const QaasQuery& q,
                                     double base_latency_s) const {
  QaasEstimate e;
  // Full columns are billed regardless of the selection.
  double billed_bytes =
      internal_bytes_sf1k_ * q.sf_ratio * q.used_column_fraction;
  e.cost_usd = billed_bytes / kTib * kUsdPerTib;
  // Sublinear latency growth (the paper observes ~8.5x for 10x data on Q1,
  // consistent with an exponent just below 1).
  e.latency_s = base_latency_s * std::pow(q.sf_ratio, 0.93);
  // Loading: 40 min at SF 1k, 6.7 h at SF 10k => exactly linear.
  e.load_time_s = 40.0 * 60.0 * q.sf_ratio;
  return e;
}

}  // namespace lambada::models
