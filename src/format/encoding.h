#ifndef LAMBADA_FORMAT_ENCODING_H_
#define LAMBADA_FORMAT_ENCODING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "exec/exec_context.h"

namespace lambada::format {

/// Value-level encodings applied before block compression, playing the role
/// of Parquet's "light-weight compression scheme" (Section 4.3.2).
///
/// Tags follow the serialization contract of core/plan.h: append-only,
/// never renumbered or reused, and readers bounds-check them (kMaxEncoding
/// below, checked by FileMetadata::Parse). The wire layout of each
/// encoding is specified in docs/FORMAT.md; the tag-name table there is
/// kept in sync with this enum by scripts/check_docs.py.
enum class Encoding : uint8_t {
  kPlain = 0,  ///< Raw little-endian values.
  kDelta = 1,  ///< int64 only: first value raw, then zigzag varint deltas.
               ///< Very effective on sorted columns like l_shipdate.
  kDict = 2,   ///< int64 only: distinct-value dictionary + varint indices.
               ///< Effective on low-cardinality columns like l_returnflag.
  kRle = 3,    ///< Run-length: (length, value) runs. int64 values are
               ///< zigzag varint deltas between run values; float64 values
               ///< are raw. Effective on sorted or constant-heavy columns.
};

/// Highest valid Encoding tag; footer parsing rejects anything above it.
inline constexpr uint8_t kMaxEncoding = static_cast<uint8_t>(Encoding::kRle);

/// Encodes a column into bytes using the given encoding. Returns
/// InvalidArgument if the encoding does not apply to the column type.
Result<std::vector<uint8_t>> EncodeColumn(const engine::Column& column,
                                          Encoding encoding);

/// Decodes `num_rows` values of the given type.
Result<engine::Column> DecodeColumn(const uint8_t* data, size_t size,
                                    engine::DataType type, Encoding encoding,
                                    size_t num_rows);

/// Code-domain view of a kDict column chunk: the sorted distinct values
/// plus one code per row (codes index `values`). Lets the scan evaluate
/// interval predicates on the small code space — a value interval maps to
/// a contiguous code range because the dictionary is sorted — without
/// materializing the column first.
struct DictView {
  std::vector<int64_t> values;  ///< Sorted ascending, no duplicates.
  std::vector<uint32_t> codes;  ///< One per row; codes[i] < values.size().
};

/// Decodes a kDict chunk into its dictionary + codes (no materialization).
Result<DictView> DecodeDictView(const uint8_t* data, size_t size,
                                size_t num_rows);

/// Materializes a DictView into a plain int64 column (gather).
engine::Column MaterializeDictView(const DictView& view);

/// Picks the smallest applicable encoding for the column by encoding
/// candidates and comparing sizes (cheap at our row-group sizes), with one
/// strategic exception: dict wins whenever it is within 5% of the best,
/// because only dict chunks support the reader's code-range predicate
/// push-down. Returns the winning encoding and its bytes. A threaded
/// ExecContext encodes the candidates concurrently; the comparison replays
/// in a fixed order (plain, delta, dict, rle, dict-preference), so the
/// winner — and its bytes — never depend on the thread count.
struct EncodedColumn {
  Encoding encoding = Encoding::kPlain;
  std::vector<uint8_t> bytes;
};
EncodedColumn EncodeColumnAuto(const engine::Column& column,
                               const exec::ExecContext& ctx = {});

}  // namespace lambada::format

#endif  // LAMBADA_FORMAT_ENCODING_H_
