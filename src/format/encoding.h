#ifndef LAMBADA_FORMAT_ENCODING_H_
#define LAMBADA_FORMAT_ENCODING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "exec/exec_context.h"

namespace lambada::format {

/// Value-level encodings applied before block compression, playing the role
/// of Parquet's "light-weight compression scheme" (Section 4.3.2).
enum class Encoding : uint8_t {
  kPlain = 0,  ///< Raw little-endian values.
  kDelta = 1,  ///< int64 only: first value raw, then zigzag varint deltas.
               ///< Very effective on sorted columns like l_shipdate.
  kDict = 2,   ///< int64 only: distinct-value dictionary + varint indices.
               ///< Effective on low-cardinality columns like l_returnflag.
};

/// Encodes a column into bytes using the given encoding. Returns
/// InvalidArgument if the encoding does not apply to the column type.
Result<std::vector<uint8_t>> EncodeColumn(const engine::Column& column,
                                          Encoding encoding);

/// Decodes `num_rows` values of the given type.
Result<engine::Column> DecodeColumn(const uint8_t* data, size_t size,
                                    engine::DataType type, Encoding encoding,
                                    size_t num_rows);

/// Picks the smallest applicable encoding for the column by encoding
/// candidates and comparing sizes (cheap at our row-group sizes). Returns
/// the winning encoding and its bytes. A threaded ExecContext encodes the
/// candidates concurrently; the comparison replays in a fixed order
/// (plain, delta, dict), so the winner — and its bytes — never depend on
/// the thread count.
struct EncodedColumn {
  Encoding encoding = Encoding::kPlain;
  std::vector<uint8_t> bytes;
};
EncodedColumn EncodeColumnAuto(const engine::Column& column,
                               const exec::ExecContext& ctx = {});

}  // namespace lambada::format

#endif  // LAMBADA_FORMAT_ENCODING_H_
