#include "format/source.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace lambada::format {

// ---------------------------------------------------------------------------
// InMemorySource
// ---------------------------------------------------------------------------

sim::Async<Result<BufferPtr>> InMemorySource::ReadAt(int64_t offset,
                                                     int64_t length) {
  if (offset < 0 || length < 0 ||
      offset + length > static_cast<int64_t>(data_->size())) {
    co_return Status::IOError("read out of bounds");
  }
  co_return data_->Slice(static_cast<size_t>(offset),
                         static_cast<size_t>(length));
}

sim::Async<Result<RandomAccessSource::Tail>> InMemorySource::ReadTail(
    int64_t length) {
  int64_t size = static_cast<int64_t>(data_->size());
  int64_t n = std::min(size, std::max<int64_t>(0, length));
  co_return Tail{data_->Slice(static_cast<size_t>(size - n),
                              static_cast<size_t>(n)),
                 size};
}

// ---------------------------------------------------------------------------
// S3Source
// ---------------------------------------------------------------------------

sim::Async<Result<BufferPtr>> S3Source::ReadAt(int64_t offset,
                                               int64_t length) {
  if (length == 0) co_return Buffer::FromVector({});
  if (options_.chunk_bytes <= 0 || length <= options_.chunk_bytes) {
    ++request_count_;
    // Deliberate if/else rather than a conditional expression: co_await
    // inside ?: destroys the awaited temporary before resumption on GCC.
    Result<BufferPtr> r = Status::Internal("not fetched");
    if (options_.share != nullptr) {
      r = co_await options_.share->Get(&client_, bucket_, key_, offset,
                                       length);
    } else {
      r = co_await client_.Get(bucket_, key_, offset, length);
    }
    if (!r.ok()) co_return r.status();
    if (static_cast<int64_t>((*r)->size()) != length) {
      co_return Status::IOError("short read");
    }
    co_return *std::move(r);
  }
  // Split the read into chunk_bytes ranges, downloaded with a bounded
  // number of concurrent connections (the classical technique of "hiding
  // the latency of one or more requests with the processing of another").
  struct Piece {
    int64_t offset;
    int64_t length;
    Result<BufferPtr> result = Status::Internal("not fetched");
  };
  std::vector<Piece> pieces;
  for (int64_t at = 0; at < length; at += options_.chunk_bytes) {
    pieces.push_back(
        Piece{offset + at, std::min(options_.chunk_bytes, length - at)});
  }
  auto* sim = client_.store()->simulator();
  sim::Semaphore gate(sim, std::max(1, options_.connections));
  std::vector<sim::Async<void>> fetches;
  fetches.reserve(pieces.size());
  for (auto& piece : pieces) {
    fetches.push_back(
        [](S3Source* self, sim::Semaphore* g, Piece* p) -> sim::Async<void> {
          co_await g->Acquire();
          ++self->request_count_;
          if (self->options_.share != nullptr) {
            p->result = co_await self->options_.share->Get(
                &self->client_, self->bucket_, self->key_, p->offset,
                p->length);
          } else {
            p->result =
                co_await self->client_.Get(self->bucket_, self->key_,
                                           p->offset, p->length);
          }
          g->Release();
        }(this, &gate, &piece));
  }
  co_await sim::WhenAllVoid(sim, std::move(fetches));
  std::vector<uint8_t> out(static_cast<size_t>(length));
  for (const auto& piece : pieces) {
    if (!piece.result.ok()) co_return piece.result.status();
    const BufferPtr& buf = *piece.result;
    if (static_cast<int64_t>(buf->size()) != piece.length) {
      co_return Status::IOError("short chunk read");
    }
    std::memcpy(out.data() + (piece.offset - offset), buf->data(),
                buf->size());
  }
  co_return Buffer::FromVector(std::move(out));
}

sim::Async<Result<RandomAccessSource::Tail>> S3Source::ReadTail(
    int64_t length) {
  if (options_.meta != nullptr) {
    auto cached = co_await options_.meta->GetFooter(client_.ctx(), bucket_,
                                                    key_, length);
    if (cached.ok()) {
      co_return Tail{cached->data, cached->object_size};
    }
  }
  ++request_count_;
  auto r = co_await client_.GetTail(bucket_, key_, length);
  if (!r.ok()) co_return r.status();
  if (options_.meta != nullptr) {
    // Best-effort fill; a failed write just means the next query misses.
    co_await options_.meta->PutFooter(client_.ctx(), bucket_, key_, length,
                                      *r);
  }
  co_return Tail{r->data, r->object_size};
}

}  // namespace lambada::format
