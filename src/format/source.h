#ifndef LAMBADA_FORMAT_SOURCE_H_
#define LAMBADA_FORMAT_SOURCE_H_

#include <memory>
#include <string>

#include "cloud/meta_cache.h"
#include "cloud/object_store.h"
#include "cloud/scan_share.h"
#include "common/buffer.h"
#include "common/status.h"
#include "sim/async.h"

namespace lambada::format {

/// Random-access byte source, the user-level filesystem interface of
/// Section 4.3.2 (Figure 8): ReadAt supports multiple concurrent reads,
/// unlike a stream's Seek/Read.
class RandomAccessSource {
 public:
  struct Tail {
    BufferPtr data;
    int64_t file_size = 0;
  };

  virtual ~RandomAccessSource() = default;

  /// Reads exactly [offset, offset + length); IOError if out of bounds.
  virtual sim::Async<Result<BufferPtr>> ReadAt(int64_t offset,
                                               int64_t length) = 0;

  /// Reads the last min(length, size) bytes and reports the file size.
  virtual sim::Async<Result<Tail>> ReadTail(int64_t length) = 0;
};

/// Source over an in-memory buffer (host-side tests and tools).
class InMemorySource final : public RandomAccessSource {
 public:
  explicit InMemorySource(BufferPtr data) : data_(std::move(data)) {}

  sim::Async<Result<BufferPtr>> ReadAt(int64_t offset,
                                       int64_t length) override;
  sim::Async<Result<Tail>> ReadTail(int64_t length) override;

 private:
  BufferPtr data_;
};

/// Source over a simulated S3 object, implementing concurrency level (1) of
/// the scan operator: a large read may be split into `chunk_bytes` ranges
/// downloaded over up to `connections` concurrent requests (Figure 7).
class S3Source final : public RandomAccessSource {
 public:
  struct Options {
    /// Request ("chunk") size for splitting large reads; <= 0 disables
    /// splitting (one request per read).
    int64_t chunk_bytes = 8 * 1024 * 1024;
    /// Concurrent in-flight range requests within one ReadAt.
    int connections = 1;
    /// Optional shared-scan broker (serving mode): ranged GETs over the
    /// same extent of the same object join one physical request.
    cloud::SharedScanBroker* share = nullptr;
    /// Optional metadata cache (serving mode): ReadTail consults it before
    /// touching S3 and fills it on a miss.
    cloud::MetadataCache* meta = nullptr;
  };

  S3Source(cloud::S3Client client, std::string bucket, std::string key,
           Options options)
      : client_(std::move(client)),
        bucket_(std::move(bucket)),
        key_(std::move(key)),
        options_(options) {}

  S3Source(cloud::S3Client client, std::string bucket, std::string key)
      : S3Source(std::move(client), std::move(bucket), std::move(key),
                 Options()) {}

  sim::Async<Result<BufferPtr>> ReadAt(int64_t offset,
                                       int64_t length) override;
  sim::Async<Result<Tail>> ReadTail(int64_t length) override;

  /// Number of GET requests issued so far by this source.
  int64_t request_count() const { return request_count_; }

 private:
  cloud::S3Client client_;
  std::string bucket_;
  std::string key_;
  Options options_;
  int64_t request_count_ = 0;
};

}  // namespace lambada::format

#endif  // LAMBADA_FORMAT_SOURCE_H_
