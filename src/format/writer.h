#ifndef LAMBADA_FORMAT_WRITER_H_
#define LAMBADA_FORMAT_WRITER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "compress/codec.h"
#include "engine/table.h"
#include "exec/exec_context.h"
#include "format/metadata.h"

namespace lambada::format {

/// Options controlling file layout. The defaults mirror the paper's setup:
/// heavy (GZIP-class) compression and statistics enabled.
struct WriterOptions {
  /// Rows per row group. The paper's 500 MB files have a handful of row
  /// groups each; experiments configure this to match that shape.
  int64_t row_group_rows = 64 * 1024;
  compress::CodecId codec = compress::CodecId::kHeavy;
  /// Choose the smallest value encoding per column chunk; plain otherwise.
  bool auto_encoding = true;
  /// Write min/max statistics (enables row-group pruning).
  bool write_stats = true;
  /// Execution context for the encode+compress kernels: a row group's
  /// column chunks are independent, so they encode and compress in
  /// parallel and assemble in column order — file bytes are identical for
  /// every thread count. Default is serial.
  exec::ExecContext exec;
};

/// Serializes table chunks into an .lpq file held in memory. Files are
/// written whole (the paper stores immutable objects on S3), so an
/// in-memory build followed by one PUT is the natural write path.
class FileWriter {
 public:
  FileWriter(engine::SchemaPtr schema, const WriterOptions& options = {});

  /// Appends rows; row groups are cut automatically.
  Status Append(const engine::TableChunk& chunk);

  /// Flushes pending rows and returns the complete file bytes. The writer
  /// is unusable afterwards.
  Result<std::vector<uint8_t>> Finish();

  /// Convenience: single-shot serialization of one table.
  static Result<std::vector<uint8_t>> WriteTable(
      const engine::TableChunk& table, const WriterOptions& options = {});

 private:
  Status FlushRowGroup();

  engine::SchemaPtr schema_;
  WriterOptions options_;
  std::vector<uint8_t> file_;
  FileMetadata metadata_;
  engine::TableChunk pending_;
  bool finished_ = false;
};

}  // namespace lambada::format

#endif  // LAMBADA_FORMAT_WRITER_H_
