#include "format/encoding.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>

#include "common/binio.h"
#include "exec/parallel_for.h"

namespace lambada::format {

using engine::Column;
using engine::DataType;

namespace {

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

std::vector<uint8_t> EncodePlain(const Column& c) {
  std::vector<uint8_t> out(c.size() * 8);
  if (c.type() == DataType::kInt64) {
    std::memcpy(out.data(), c.i64().data(), out.size());
  } else {
    std::memcpy(out.data(), c.f64().data(), out.size());
  }
  return out;
}

Result<Column> DecodePlain(const uint8_t* data, size_t size, DataType type,
                           size_t num_rows) {
  if (size != num_rows * 8) {
    return Status::IOError("plain encoding: size mismatch");
  }
  if (type == DataType::kInt64) {
    std::vector<int64_t> v(num_rows);
    std::memcpy(v.data(), data, size);
    return Column::Int64(std::move(v));
  }
  std::vector<double> v(num_rows);
  std::memcpy(v.data(), data, size);
  return Column::Float64(std::move(v));
}

std::vector<uint8_t> EncodeDelta(const Column& c) {
  BinaryWriter w;
  const auto& v = c.i64();
  int64_t prev = 0;
  for (int64_t x : v) {
    w.PutVarint(ZigzagEncode(x - prev));
    prev = x;
  }
  return w.Take();
}

Result<Column> DecodeDelta(const uint8_t* data, size_t size,
                           size_t num_rows) {
  BinaryReader r(data, size);
  std::vector<int64_t> v;
  v.reserve(num_rows);
  int64_t prev = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    ASSIGN_OR_RETURN(uint64_t z, r.GetVarint());
    prev += ZigzagDecode(z);
    v.push_back(prev);
  }
  if (r.remaining() != 0) {
    return Status::IOError("delta encoding: trailing bytes");
  }
  return Column::Int64(std::move(v));
}

std::vector<uint8_t> EncodeDict(const Column& c) {
  const auto& v = c.i64();
  std::map<int64_t, uint32_t> dict;
  for (int64_t x : v) dict.emplace(x, 0);
  uint32_t next = 0;
  for (auto& [value, index] : dict) index = next++;
  BinaryWriter w;
  w.PutVarint(dict.size());
  int64_t prev = 0;
  for (const auto& [value, index] : dict) {
    w.PutVarint(ZigzagEncode(value - prev));  // Sorted: deltas are small.
    prev = value;
  }
  for (int64_t x : v) {
    w.PutVarint(dict[x]);
  }
  return w.Take();
}

Result<Column> DecodeDict(const uint8_t* data, size_t size,
                          size_t num_rows) {
  BinaryReader r(data, size);
  ASSIGN_OR_RETURN(uint64_t dict_size, r.GetVarint());
  if (dict_size > size) return Status::IOError("dict: implausible size");
  std::vector<int64_t> dict;
  dict.reserve(dict_size);
  int64_t prev = 0;
  for (uint64_t i = 0; i < dict_size; ++i) {
    ASSIGN_OR_RETURN(uint64_t z, r.GetVarint());
    prev += ZigzagDecode(z);
    dict.push_back(prev);
  }
  std::vector<int64_t> v;
  v.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    ASSIGN_OR_RETURN(uint64_t idx, r.GetVarint());
    if (idx >= dict.size()) return Status::IOError("dict: bad index");
    v.push_back(dict[idx]);
  }
  if (r.remaining() != 0) {
    return Status::IOError("dict encoding: trailing bytes");
  }
  return Column::Int64(std::move(v));
}

}  // namespace

Result<std::vector<uint8_t>> EncodeColumn(const Column& column,
                                          Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return EncodePlain(column);
    case Encoding::kDelta:
      if (column.type() != DataType::kInt64) {
        return Status::Invalid("delta encoding requires int64");
      }
      return EncodeDelta(column);
    case Encoding::kDict:
      if (column.type() != DataType::kInt64) {
        return Status::Invalid("dict encoding requires int64");
      }
      return EncodeDict(column);
  }
  return Status::Invalid("unknown encoding");
}

Result<Column> DecodeColumn(const uint8_t* data, size_t size, DataType type,
                            Encoding encoding, size_t num_rows) {
  switch (encoding) {
    case Encoding::kPlain:
      return DecodePlain(data, size, type, num_rows);
    case Encoding::kDelta:
      if (type != DataType::kInt64) {
        return Status::IOError("delta encoding on non-int64 column");
      }
      return DecodeDelta(data, size, num_rows);
    case Encoding::kDict:
      if (type != DataType::kInt64) {
        return Status::IOError("dict encoding on non-int64 column");
      }
      return DecodeDict(data, size, num_rows);
  }
  return Status::IOError("unknown encoding");
}

EncodedColumn EncodeColumnAuto(const Column& column,
                               const exec::ExecContext& ctx) {
  // Encode the candidates (concurrently under a threaded context), then
  // replay the sequential comparison order so the choice is identical.
  std::vector<uint8_t> plain, delta, dict;
  const bool try_int = column.type() == DataType::kInt64 && column.size() > 0;
  std::vector<std::function<void()>> candidates;
  candidates.push_back([&] { plain = EncodePlain(column); });
  if (try_int) {
    candidates.push_back([&] { delta = EncodeDelta(column); });
    candidates.push_back([&] { dict = EncodeDict(column); });
  }
  exec::ParallelForEach(ctx, candidates.size(),
                        [&](size_t i) { candidates[i](); });
  EncodedColumn best{Encoding::kPlain, std::move(plain)};
  if (try_int) {
    if (delta.size() < best.bytes.size()) {
      best = EncodedColumn{Encoding::kDelta, std::move(delta)};
    }
    if (dict.size() < best.bytes.size()) {
      best = EncodedColumn{Encoding::kDict, std::move(dict)};
    }
  }
  return best;
}

}  // namespace lambada::format
