#include "format/encoding.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>

#include "common/binio.h"
#include "exec/parallel_for.h"

namespace lambada::format {

using engine::Column;
using engine::DataType;

namespace {

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

std::vector<uint8_t> EncodePlain(const Column& c) {
  std::vector<uint8_t> out(c.size() * 8);
  if (c.type() == DataType::kInt64) {
    std::memcpy(out.data(), c.i64().data(), out.size());
  } else {
    std::memcpy(out.data(), c.f64().data(), out.size());
  }
  return out;
}

Result<Column> DecodePlain(const uint8_t* data, size_t size, DataType type,
                           size_t num_rows) {
  if (size != num_rows * 8) {
    return Status::IOError("plain encoding: size mismatch");
  }
  if (type == DataType::kInt64) {
    std::vector<int64_t> v(num_rows);
    std::memcpy(v.data(), data, size);
    return Column::Int64(std::move(v));
  }
  std::vector<double> v(num_rows);
  std::memcpy(v.data(), data, size);
  return Column::Float64(std::move(v));
}

std::vector<uint8_t> EncodeDelta(const Column& c) {
  BinaryWriter w;
  const auto& v = c.i64();
  int64_t prev = 0;
  for (int64_t x : v) {
    w.PutVarint(ZigzagEncode(x - prev));
    prev = x;
  }
  return w.Take();
}

Result<Column> DecodeDelta(const uint8_t* data, size_t size,
                           size_t num_rows) {
  BinaryReader r(data, size);
  std::vector<int64_t> v;
  v.reserve(num_rows);
  int64_t prev = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    ASSIGN_OR_RETURN(uint64_t z, r.GetVarint());
    prev += ZigzagDecode(z);
    v.push_back(prev);
  }
  if (r.remaining() != 0) {
    return Status::IOError("delta encoding: trailing bytes");
  }
  return Column::Int64(std::move(v));
}

std::vector<uint8_t> EncodeDict(const Column& c) {
  const auto& v = c.i64();
  std::map<int64_t, uint32_t> dict;
  for (int64_t x : v) dict.emplace(x, 0);
  uint32_t next = 0;
  for (auto& [value, index] : dict) index = next++;
  BinaryWriter w;
  w.PutVarint(dict.size());
  int64_t prev = 0;
  for (const auto& [value, index] : dict) {
    w.PutVarint(ZigzagEncode(value - prev));  // Sorted: deltas are small.
    prev = value;
  }
  for (int64_t x : v) {
    w.PutVarint(dict[x]);
  }
  return w.Take();
}

std::vector<uint8_t> EncodeRle(const Column& c) {
  BinaryWriter w;
  if (c.type() == DataType::kInt64) {
    const auto& v = c.i64();
    int64_t prev_run = 0;
    size_t i = 0;
    while (i < v.size()) {
      size_t j = i;
      while (j < v.size() && v[j] == v[i]) ++j;
      w.PutVarint(j - i);
      // Wrapping difference in uint64 (INT64_MIN - INT64_MAX would be
      // signed overflow); zigzag round-trips the wrapped value exactly.
      w.PutVarint(ZigzagEncode(static_cast<int64_t>(
          static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(prev_run))));
      prev_run = v[i];
      i = j;
    }
  } else {
    const auto& v = c.f64();
    size_t i = 0;
    while (i < v.size()) {
      // Bit-pattern equality: NaNs and signed zeros round-trip exactly.
      uint64_t bits;
      std::memcpy(&bits, &v[i], 8);
      size_t j = i;
      for (; j < v.size(); ++j) {
        uint64_t b;
        std::memcpy(&b, &v[j], 8);
        if (b != bits) break;
      }
      w.PutVarint(j - i);
      w.PutF64(v[i]);
      i = j;
    }
  }
  return w.Take();
}

Result<Column> DecodeRle(const uint8_t* data, size_t size, DataType type,
                         size_t num_rows) {
  BinaryReader r(data, size);
  if (type == DataType::kInt64) {
    std::vector<int64_t> v;
    v.reserve(num_rows);
    int64_t prev_run = 0;
    while (v.size() < num_rows) {
      ASSIGN_OR_RETURN(uint64_t run, r.GetVarint());
      if (run == 0 || run > num_rows - v.size()) {
        return Status::IOError("rle: bad run length");
      }
      ASSIGN_OR_RETURN(uint64_t z, r.GetVarint());
      prev_run = static_cast<int64_t>(static_cast<uint64_t>(prev_run) +
                                      static_cast<uint64_t>(ZigzagDecode(z)));
      v.insert(v.end(), static_cast<size_t>(run), prev_run);
    }
    if (r.remaining() != 0) return Status::IOError("rle: trailing bytes");
    return Column::Int64(std::move(v));
  }
  std::vector<double> v;
  v.reserve(num_rows);
  while (v.size() < num_rows) {
    ASSIGN_OR_RETURN(uint64_t run, r.GetVarint());
    if (run == 0 || run > num_rows - v.size()) {
      return Status::IOError("rle: bad run length");
    }
    ASSIGN_OR_RETURN(double value, r.GetF64());
    v.insert(v.end(), static_cast<size_t>(run), value);
  }
  if (r.remaining() != 0) return Status::IOError("rle: trailing bytes");
  return Column::Float64(std::move(v));
}

}  // namespace

Result<DictView> DecodeDictView(const uint8_t* data, size_t size,
                                size_t num_rows) {
  BinaryReader r(data, size);
  ASSIGN_OR_RETURN(uint64_t dict_size, r.GetVarint());
  if (dict_size > size) return Status::IOError("dict: implausible size");
  DictView view;
  view.values.reserve(dict_size);
  int64_t prev = 0;
  for (uint64_t i = 0; i < dict_size; ++i) {
    ASSIGN_OR_RETURN(uint64_t z, r.GetVarint());
    prev += ZigzagDecode(z);
    view.values.push_back(prev);
  }
  view.codes.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    ASSIGN_OR_RETURN(uint64_t idx, r.GetVarint());
    if (idx >= view.values.size()) return Status::IOError("dict: bad index");
    view.codes.push_back(static_cast<uint32_t>(idx));
  }
  if (r.remaining() != 0) {
    return Status::IOError("dict encoding: trailing bytes");
  }
  return view;
}

Column MaterializeDictView(const DictView& view) {
  std::vector<int64_t> v;
  v.reserve(view.codes.size());
  for (uint32_t code : view.codes) v.push_back(view.values[code]);
  return Column::Int64(std::move(v));
}

namespace {

Result<Column> DecodeDict(const uint8_t* data, size_t size,
                          size_t num_rows) {
  ASSIGN_OR_RETURN(DictView view, DecodeDictView(data, size, num_rows));
  return MaterializeDictView(view);
}

}  // namespace

Result<std::vector<uint8_t>> EncodeColumn(const Column& column,
                                          Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return EncodePlain(column);
    case Encoding::kDelta:
      if (column.type() != DataType::kInt64) {
        return Status::Invalid("delta encoding requires int64");
      }
      return EncodeDelta(column);
    case Encoding::kDict:
      if (column.type() != DataType::kInt64) {
        return Status::Invalid("dict encoding requires int64");
      }
      return EncodeDict(column);
    case Encoding::kRle:
      return EncodeRle(column);
  }
  return Status::Invalid("unknown encoding");
}

Result<Column> DecodeColumn(const uint8_t* data, size_t size, DataType type,
                            Encoding encoding, size_t num_rows) {
  switch (encoding) {
    case Encoding::kPlain:
      return DecodePlain(data, size, type, num_rows);
    case Encoding::kDelta:
      if (type != DataType::kInt64) {
        return Status::IOError("delta encoding on non-int64 column");
      }
      return DecodeDelta(data, size, num_rows);
    case Encoding::kDict:
      if (type != DataType::kInt64) {
        return Status::IOError("dict encoding on non-int64 column");
      }
      return DecodeDict(data, size, num_rows);
    case Encoding::kRle:
      return DecodeRle(data, size, type, num_rows);
  }
  return Status::IOError("unknown encoding");
}

EncodedColumn EncodeColumnAuto(const Column& column,
                               const exec::ExecContext& ctx) {
  // Encode the candidates (concurrently under a threaded context), then
  // replay the sequential comparison order so the choice is identical.
  std::vector<uint8_t> plain, delta, dict, rle;
  const bool nonempty = column.size() > 0;
  const bool try_int = column.type() == DataType::kInt64 && nonempty;
  std::vector<std::function<void()>> candidates;
  candidates.push_back([&] { plain = EncodePlain(column); });
  if (try_int) {
    candidates.push_back([&] { delta = EncodeDelta(column); });
    candidates.push_back([&] { dict = EncodeDict(column); });
  }
  if (nonempty) {
    candidates.push_back([&] { rle = EncodeRle(column); });
  }
  exec::ParallelForEach(ctx, candidates.size(),
                        [&](size_t i) { candidates[i](); });
  // Decide on sizes alone, moving no buffer until the winner is final.
  Encoding winner = Encoding::kPlain;
  size_t winner_size = plain.size();
  if (try_int) {
    if (delta.size() < winner_size) {
      winner = Encoding::kDelta;
      winner_size = delta.size();
    }
    if (dict.size() < winner_size) {
      winner = Encoding::kDict;
      winner_size = dict.size();
    }
  }
  if (nonempty && rle.size() < winner_size) {
    winner = Encoding::kRle;
    winner_size = rle.size();
  }
  // Dict is strategically preferred when it is within a few percent of the
  // best: it is the only encoding the reader can evaluate predicates on
  // without materializing (code-range push-down), worth far more than the
  // last percent of size. On small-range integers dict and delta are both
  // one byte per value, so without this tie-break delta would always edge
  // out dict by its few bytes of dictionary header.
  if (try_int && winner != Encoding::kDict &&
      static_cast<double>(dict.size()) <=
          1.05 * static_cast<double>(winner_size)) {
    winner = Encoding::kDict;
  }
  switch (winner) {
    case Encoding::kDelta:
      return EncodedColumn{Encoding::kDelta, std::move(delta)};
    case Encoding::kDict:
      return EncodedColumn{Encoding::kDict, std::move(dict)};
    case Encoding::kRle:
      return EncodedColumn{Encoding::kRle, std::move(rle)};
    case Encoding::kPlain:
      break;
  }
  return EncodedColumn{Encoding::kPlain, std::move(plain)};
}

}  // namespace lambada::format
