#ifndef LAMBADA_FORMAT_METADATA_H_
#define LAMBADA_FORMAT_METADATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "compress/codec.h"
#include "engine/table.h"
#include "format/encoding.h"

namespace lambada::format {

/// Magic bytes framing an .lpq file (our Parquet-class format).
inline constexpr char kMagic[4] = {'L', 'P', 'Q', '1'};

/// Min/max statistics of one column chunk, used for predicate push-down
/// (row-group pruning, Section 5.3). The active pair is determined by the
/// column's type in the schema.
struct ColumnStats {
  bool valid = false;
  int64_t min_i64 = 0;
  int64_t max_i64 = 0;
  double min_f64 = 0;
  double max_f64 = 0;

  static ColumnStats Compute(const engine::Column& column);
};

/// Location and shape of one column chunk within the file.
struct ColumnChunkMeta {
  uint64_t offset = 0;            ///< Absolute file offset.
  uint64_t compressed_size = 0;   ///< Bytes on storage.
  uint64_t uncompressed_size = 0; ///< Bytes after codec, before decoding.
  Encoding encoding = Encoding::kPlain;
  compress::CodecId codec = compress::CodecId::kNone;
  ColumnStats stats;
};

/// One horizontal partition of the file ("row group").
struct RowGroupMeta {
  uint64_t num_rows = 0;
  std::vector<ColumnChunkMeta> columns;

  /// Total compressed bytes of the given column subset.
  uint64_t ProjectedBytes(const std::vector<int>& columns_subset) const;
};

/// The file footer: schema plus the index of all row groups. Loaded with a
/// single (tail) read, exactly like Parquet metadata (Section 4.3.2).
struct FileMetadata {
  engine::Schema schema;
  uint64_t num_rows = 0;
  std::vector<RowGroupMeta> row_groups;

  std::vector<uint8_t> Serialize() const;
  static Result<FileMetadata> Parse(const uint8_t* data, size_t size);
};

}  // namespace lambada::format

#endif  // LAMBADA_FORMAT_METADATA_H_
