#include "format/writer.h"

#include <cstring>

#include "common/binio.h"
#include "exec/parallel_for.h"

namespace lambada::format {

using engine::TableChunk;

FileWriter::FileWriter(engine::SchemaPtr schema, const WriterOptions& options)
    : schema_(std::move(schema)),
      options_(options),
      pending_(TableChunk::Empty(schema_)) {
  LAMBADA_CHECK(schema_ != nullptr);
  LAMBADA_CHECK_GT(options_.row_group_rows, 0);
  metadata_.schema = *schema_;
  file_.insert(file_.end(), kMagic, kMagic + 4);
}

Status FileWriter::Append(const TableChunk& chunk) {
  if (finished_) return Status::FailedPrecondition("writer finished");
  if (!(*chunk.schema() == *schema_)) {
    return Status::Invalid("chunk schema does not match writer schema");
  }
  RETURN_NOT_OK(pending_.Append(chunk));
  while (static_cast<int64_t>(pending_.num_rows()) >=
         options_.row_group_rows) {
    RETURN_NOT_OK(FlushRowGroup());
  }
  return Status::OK();
}

Status FileWriter::FlushRowGroup() {
  size_t take = std::min<size_t>(
      pending_.num_rows(), static_cast<size_t>(options_.row_group_rows));
  if (take == 0) return Status::OK();
  // Split pending rows into [0, take) and the remainder.
  std::vector<bool> head(pending_.num_rows(), false);
  std::vector<bool> tail(pending_.num_rows(), false);
  for (size_t i = 0; i < pending_.num_rows(); ++i) {
    (i < take ? head : tail)[i] = true;
  }
  TableChunk group = pending_.Filter(head);
  TableChunk rest = pending_.Filter(tail);
  pending_ = std::move(rest);

  RowGroupMeta rg;
  rg.num_rows = group.num_rows();
  const auto& codec = compress::GetCodec(options_.codec);
  // Encode + compress the column chunks in parallel (they are
  // independent), then append them in column order: the file bytes are
  // the same as the sequential writer's for every thread count. Only the
  // compressed bytes survive the kernel (each encoded buffer is freed as
  // soon as it is compressed, and each compressed buffer as soon as it is
  // appended), so transient memory beyond file_ is one compressed row
  // group plus up to num_threads in-flight encoded columns.
  struct BuiltColumn {
    Encoding encoding = Encoding::kPlain;
    size_t uncompressed_size = 0;
    std::vector<uint8_t> compressed;
    ColumnStats stats;
    Status status = Status::OK();
  };
  std::vector<BuiltColumn> built(group.num_columns());
  exec::ParallelForEach(
      options_.exec, group.num_columns(), [&](size_t c) {
        const engine::Column& col = group.column(c);
        EncodedColumn encoded;
        if (options_.auto_encoding) {
          // Forward the context: candidate encodings (plain/delta/dict)
          // run concurrently too — nested ParallelFor is safe (the
          // helping wait in RunMorsels) and the winner is thread-count
          // independent.
          encoded = EncodeColumnAuto(col, options_.exec);
        } else {
          auto bytes = EncodeColumn(col, Encoding::kPlain);
          if (!bytes.ok()) {
            built[c].status = bytes.status();
            return;
          }
          encoded = EncodedColumn{Encoding::kPlain, *std::move(bytes)};
        }
        built[c].encoding = encoded.encoding;
        built[c].uncompressed_size = encoded.bytes.size();
        built[c].compressed = codec.Compress(encoded.bytes);
        if (options_.write_stats) {
          built[c].stats = ColumnStats::Compute(col);
        }
      });
  for (size_t c = 0; c < group.num_columns(); ++c) {
    RETURN_NOT_OK(built[c].status);
    ColumnChunkMeta cc;
    cc.offset = file_.size();
    cc.compressed_size = built[c].compressed.size();
    cc.uncompressed_size = built[c].uncompressed_size;
    cc.encoding = built[c].encoding;
    cc.codec = options_.codec;
    if (options_.write_stats) {
      cc.stats = built[c].stats;
    }
    file_.insert(file_.end(), built[c].compressed.begin(),
                 built[c].compressed.end());
    std::vector<uint8_t>().swap(built[c].compressed);
    rg.columns.push_back(cc);
  }
  metadata_.num_rows += rg.num_rows;
  metadata_.row_groups.push_back(std::move(rg));
  return Status::OK();
}

Result<std::vector<uint8_t>> FileWriter::Finish() {
  if (finished_) return Status::FailedPrecondition("writer finished");
  while (pending_.num_rows() > 0) {
    RETURN_NOT_OK(FlushRowGroup());
  }
  finished_ = true;
  std::vector<uint8_t> footer = metadata_.Serialize();
  file_.insert(file_.end(), footer.begin(), footer.end());
  uint32_t footer_len = static_cast<uint32_t>(footer.size());
  uint8_t len_bytes[4];
  std::memcpy(len_bytes, &footer_len, 4);
  file_.insert(file_.end(), len_bytes, len_bytes + 4);
  file_.insert(file_.end(), kMagic, kMagic + 4);
  return std::move(file_);
}

Result<std::vector<uint8_t>> FileWriter::WriteTable(
    const TableChunk& table, const WriterOptions& options) {
  FileWriter writer(table.schema(), options);
  RETURN_NOT_OK(writer.Append(table));
  return writer.Finish();
}

}  // namespace lambada::format
