#include "format/reader.h"

#include <cstring>

namespace lambada::format {

using engine::Column;
using engine::TableChunk;

sim::Async<Result<std::shared_ptr<FileReader>>> FileReader::Open(
    std::shared_ptr<RandomAccessSource> source, ReaderOptions options) {
  // One tail read bootstraps the footer (Section 4.3.2: "The library loads
  // this metadata with a single file read").
  auto tail = co_await source->ReadTail(options.footer_probe_bytes);
  if (!tail.ok()) co_return tail.status();
  const BufferPtr& probe = tail->data;
  if (probe->size() < 12) co_return Status::IOError("file too small");
  const uint8_t* end = probe->data() + probe->size();
  if (std::memcmp(end - 4, kMagic, 4) != 0) {
    co_return Status::IOError("bad magic: not an lpq file");
  }
  uint32_t footer_len;
  std::memcpy(&footer_len, end - 8, 4);
  int64_t footer_end = tail->file_size - 8;
  int64_t footer_start = footer_end - static_cast<int64_t>(footer_len);
  if (footer_start < 4) co_return Status::IOError("corrupt footer length");

  BufferPtr footer;
  int64_t probe_start = tail->file_size - static_cast<int64_t>(probe->size());
  if (footer_start >= probe_start) {
    footer = probe->Slice(static_cast<size_t>(footer_start - probe_start),
                          footer_len);
  } else {
    // Footer larger than the probe: one more ranged read.
    auto r = co_await source->ReadAt(footer_start, footer_len);
    if (!r.ok()) co_return r.status();
    footer = *r;
  }
  auto meta = FileMetadata::Parse(footer->data(), footer->size());
  if (!meta.ok()) co_return meta.status();
  // Footer parsing is cheap but not free.
  co_await options.cpu.Charge(static_cast<double>(footer->size()) / 200e6);
  co_return std::shared_ptr<FileReader>(
      new FileReader(std::move(source), std::move(options),
                     *std::move(meta)));
}

sim::Async<Result<Column>> FileReader::ReadColumnChunk(int rg, int column) {
  const auto& rg_meta = metadata_.row_groups[static_cast<size_t>(rg)];
  const auto& cc = rg_meta.columns[static_cast<size_t>(column)];
  auto raw = co_await source_->ReadAt(static_cast<int64_t>(cc.offset),
                                      static_cast<int64_t>(cc.compressed_size));
  if (!raw.ok()) co_return raw.status();
  const auto& codec = compress::GetCodec(cc.codec);
  auto decompressed =
      codec.Decompress((*raw)->data(), (*raw)->size(), cc.uncompressed_size);
  if (!decompressed.ok()) co_return decompressed.status();
  // Charge decompression CPU: the paper's Q1 is CPU-bound on exactly this.
  co_await options_.cpu.Charge(static_cast<double>(cc.uncompressed_size) *
                               codec.DecompressCpuSecondsPerByte());
  auto col = DecodeColumn(decompressed->data(), decompressed->size(),
                          metadata_.schema.field(column).type, cc.encoding,
                          rg_meta.num_rows);
  if (!col.ok()) co_return col.status();
  // Decoding (varint/delta) cost.
  co_await options_.cpu.Charge(static_cast<double>(rg_meta.num_rows) * 8.0 /
                               2e9);
  co_return *std::move(col);
}

sim::Async<Result<TableChunk>> FileReader::ReadRowGroup(
    int rg, std::vector<int> columns, int fetch_parallelism) {
  if (rg < 0 || rg >= num_row_groups()) {
    co_return Status::OutOfRange("row group index out of range");
  }
  for (int c : columns) {
    if (c < 0 || static_cast<size_t>(c) >= metadata_.schema.num_fields()) {
      co_return Status::OutOfRange("column index out of range");
    }
  }
  std::vector<Result<Column>> results;
  results.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    results.emplace_back(Status::Internal("not fetched"));
  }
  // Fetch column chunks with bounded concurrency (level 2).
  sim::Simulator* sim = options_.sim;
  if (sim != nullptr && fetch_parallelism > 1 && columns.size() > 1) {
    sim::Semaphore gate(sim, fetch_parallelism);
    std::vector<sim::Async<void>> fetches;
    for (size_t i = 0; i < columns.size(); ++i) {
      fetches.push_back([](FileReader* self, sim::Semaphore* g, int rg_idx,
                           int col, Result<Column>* out) -> sim::Async<void> {
        co_await g->Acquire();
        *out = co_await self->ReadColumnChunk(rg_idx, col);
        g->Release();
      }(this, &gate, rg, columns[i], &results[i]));
    }
    co_await sim::WhenAllVoid(sim, std::move(fetches));
  } else {
    for (size_t i = 0; i < columns.size(); ++i) {
      results[i] = co_await ReadColumnChunk(rg, columns[i]);
    }
  }
  std::vector<Column> cols;
  cols.reserve(columns.size());
  for (auto& r : results) {
    if (!r.ok()) co_return r.status();
    cols.push_back(*std::move(r));
  }
  auto schema =
      std::make_shared<engine::Schema>(metadata_.schema.Project(columns));
  co_return TableChunk(std::move(schema), std::move(cols));
}

}  // namespace lambada::format
