#include "format/reader.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <optional>

#include "format/encoding.h"

namespace lambada::format {

using engine::Column;
using engine::TableChunk;

namespace {

/// Maps a closed value interval [lo, hi] (doubles, possibly infinite) to
/// the closed integer interval [*lo_i, *hi_i] it admits. Returns false if
/// no int64 can qualify. Exact: the double->int64 edges are computed with
/// ceil/floor and explicit 2^63 overflow branches, so values beyond 2^53
/// are never mis-classified by double rounding (the residual filter is
/// exact, but rows dropped here never reach it).
bool IntIntervalOf(const ColumnBound& bound, int64_t* lo_i, int64_t* hi_i) {
  constexpr double kTwo63 = 9223372036854775808.0;  // 2^63 exactly.
  if (bound.lo >= kTwo63 || bound.hi < -kTwo63 || bound.lo > bound.hi) {
    return false;
  }
  *lo_i = bound.lo <= -kTwo63 ? std::numeric_limits<int64_t>::min()
                              : static_cast<int64_t>(std::ceil(bound.lo));
  *hi_i = bound.hi >= kTwo63 ? std::numeric_limits<int64_t>::max()
                             : static_cast<int64_t>(std::floor(bound.hi));
  return *lo_i <= *hi_i;
}

}  // namespace

sim::Async<Result<std::shared_ptr<FileReader>>> FileReader::Open(
    std::shared_ptr<RandomAccessSource> source, ReaderOptions options) {
  // One tail read bootstraps the footer (Section 4.3.2: "The library loads
  // this metadata with a single file read").
  auto tail = co_await source->ReadTail(options.footer_probe_bytes);
  if (!tail.ok()) co_return tail.status();
  const BufferPtr& probe = tail->data;
  int64_t fetched = static_cast<int64_t>(probe->size());
  if (probe->size() < 12) co_return Status::IOError("file too small");
  const uint8_t* end = probe->data() + probe->size();
  if (std::memcmp(end - 4, kMagic, 4) != 0) {
    co_return Status::IOError("bad magic: not an lpq file");
  }
  uint32_t footer_len;
  std::memcpy(&footer_len, end - 8, 4);
  int64_t footer_end = tail->file_size - 8;
  int64_t footer_start = footer_end - static_cast<int64_t>(footer_len);
  if (footer_start < 4) co_return Status::IOError("corrupt footer length");

  BufferPtr footer;
  int64_t probe_start = tail->file_size - static_cast<int64_t>(probe->size());
  if (footer_start >= probe_start) {
    footer = probe->Slice(static_cast<size_t>(footer_start - probe_start),
                          footer_len);
  } else {
    // Footer larger than the probe: one more ranged read.
    auto r = co_await source->ReadAt(footer_start, footer_len);
    if (!r.ok()) co_return r.status();
    footer = *r;
    fetched += static_cast<int64_t>(footer->size());
  }
  auto meta = FileMetadata::Parse(footer->data(), footer->size());
  if (!meta.ok()) co_return meta.status();
  // Footer parsing is cheap but not free.
  co_await options.cpu.Charge(static_cast<double>(footer->size()) / 200e6);
  auto reader = std::shared_ptr<FileReader>(
      new FileReader(std::move(source), std::move(options),
                     *std::move(meta)));
  reader->bytes_fetched_ = fetched;
  co_return reader;
}

sim::Async<Result<std::vector<uint8_t>>> FileReader::DecompressChunk(
    const ColumnChunkMeta& cc, const uint8_t* raw, size_t raw_size) {
  const auto& codec = compress::GetCodec(cc.codec);
  auto decompressed = codec.Decompress(raw, raw_size, cc.uncompressed_size);
  if (!decompressed.ok()) co_return decompressed.status();
  // Charge decompression CPU: the paper's Q1 is CPU-bound on exactly this.
  co_await options_.cpu.Charge(static_cast<double>(cc.uncompressed_size) *
                               codec.DecompressCpuSecondsPerByte());
  co_return *std::move(decompressed);
}

sim::Async<void> FileReader::FetchExtent(
    Extent* extent, const std::vector<size_t>& chunk_positions,
    const std::vector<int>& columns, const RowGroupMeta& rg_meta,
    const std::vector<uint8_t>& keep_bytes,
    std::vector<std::vector<uint8_t>>* chunk_data,
    std::vector<std::optional<engine::Column>>* decoded, Status* error,
    uint64_t trace_span) {
  obs::Tracer* tracer = options_.tracer;
  uint64_t get_span = obs::Begin(tracer, trace_span, "scan", "get");
  if (get_span != 0) {
    tracer->AddArg(get_span, "offset", static_cast<int64_t>(extent->begin));
    tracer->AddArg(get_span, "bytes",
                   static_cast<int64_t>(extent->end - extent->begin));
  }
  auto raw = co_await source_->ReadAt(
      static_cast<int64_t>(extent->begin),
      static_cast<int64_t>(extent->end - extent->begin));
  obs::End(tracer, get_span);
  if (!raw.ok()) {
    if (error->ok()) *error = raw.status();
    co_return;
  }
  extent->data = *std::move(raw);
  bytes_fetched_ += static_cast<int64_t>(extent->end - extent->begin);
  const size_t num_rows = static_cast<size_t>(rg_meta.num_rows);
  uint64_t decode_span = obs::Begin(tracer, trace_span, "scan", "decode");
  for (size_t k : chunk_positions) {
    const auto& cc = rg_meta.columns[static_cast<size_t>(columns[k])];
    auto bytes = co_await DecompressChunk(
        cc, extent->data->data() + (cc.offset - extent->begin),
        static_cast<size_t>(cc.compressed_size));
    if (!bytes.ok()) {
      if (error->ok()) *error = bytes.status();
      obs::End(tracer, decode_span);
      co_return;
    }
    if (keep_bytes[k] != 0) {
      (*chunk_data)[k] = *std::move(bytes);
      continue;
    }
    auto col = DecodeColumn(
        bytes->data(), bytes->size(),
        metadata_.schema.field(static_cast<size_t>(columns[k])).type,
        cc.encoding, num_rows);
    if (!col.ok()) {
      if (error->ok()) *error = col.status();
      obs::End(tracer, decode_span);
      co_return;
    }
    // Decoding (varint/delta/rle) cost, charged here so it overlaps the
    // other extents' transfers.
    co_await options_.cpu.Charge(static_cast<double>(num_rows) * 8.0 / 2e9);
    (*decoded)[k] = *std::move(col);
  }
  obs::End(tracer, decode_span);
  extent->data = nullptr;  // Only the decoded chunks survive.
}

sim::Async<Result<TableChunk>> FileReader::ReadRowGroup(
    int rg, std::vector<int> columns, int fetch_parallelism,
    const std::map<int, ColumnBound>* bounds, uint64_t trace_span) {
  if (rg < 0 || rg >= num_row_groups()) {
    co_return Status::OutOfRange("row group index out of range");
  }
  for (int c : columns) {
    if (c < 0 || static_cast<size_t>(c) >= metadata_.schema.num_fields()) {
      co_return Status::OutOfRange("column index out of range");
    }
  }
  const auto& rg_meta = metadata_.row_groups[static_cast<size_t>(rg)];
  const size_t num_rows = static_cast<size_t>(rg_meta.num_rows);

  // ---- Plan extents: projected chunks in file order, coalescing
  // latency-dominated neighbors into one ranged read each. A merge may
  // grow the extent by at most the budget (the skipped hole PLUS the
  // incoming chunk): small encoded chunks — dictionaries, run lengths —
  // ride along for free, while a bandwidth-dominated chunk keeps its own
  // read so the fetch parallelism below still overlaps its transfer with
  // its neighbors' instead of serializing them into one connection.
  std::vector<size_t> order(columns.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return rg_meta.columns[static_cast<size_t>(columns[a])].offset <
           rg_meta.columns[static_cast<size_t>(columns[b])].offset;
  });
  const uint64_t budget =
      static_cast<uint64_t>(std::max<int64_t>(0, options_.coalesce_gap_bytes));
  std::vector<Extent> extents;
  std::vector<size_t> extent_of(columns.size());  // Projection pos -> extent.
  for (size_t k : order) {
    const auto& cc = rg_meta.columns[static_cast<size_t>(columns[k])];
    uint64_t begin = cc.offset;
    uint64_t end = cc.offset + cc.compressed_size;
    if (!extents.empty() && budget > 0 && begin >= extents.back().begin &&
        std::max(end, extents.back().end) <= extents.back().end + budget) {
      extents.back().end = std::max(extents.back().end, end);
    } else {
      extents.push_back(Extent{begin, end, nullptr});
    }
    extent_of[k] = extents.size() - 1;
  }

  // ---- Fetch extents with bounded concurrency (when simulated) and
  // decompress each extent's chunks as soon as its bytes land, so the
  // codec CPU of one extent overlaps the transfers of the others — the
  // overlap the per-column reader had, kept across the coalescing
  // rewrite. The raw extent buffer is freed as soon as its chunks are
  // decompressed.
  std::vector<std::vector<size_t>> extent_chunks(extents.size());
  for (size_t k = 0; k < columns.size(); ++k) {
    extent_chunks[extent_of[k]].push_back(k);
  }
  // Columns awaiting dict-code predicate evaluation stop at decompressed
  // bytes (pass 1 decodes their views); everything else decodes inside
  // the concurrent fetches.
  std::vector<uint8_t> keep_bytes(columns.size(), 0);
  std::vector<std::optional<Column>> decoded(columns.size());
  if (bounds != nullptr) {
    for (size_t k = 0; k < columns.size(); ++k) {
      const auto& cc = rg_meta.columns[static_cast<size_t>(columns[k])];
      keep_bytes[k] =
          bounds->find(columns[k]) != bounds->end() &&
                  cc.encoding == Encoding::kDict &&
                  metadata_.schema.field(static_cast<size_t>(columns[k]))
                          .type == engine::DataType::kInt64
              ? 1
              : 0;
    }
  }
  std::vector<std::vector<uint8_t>> chunk_data(columns.size());
  sim::Simulator* sim = options_.sim;
  Status fetch_error = Status::OK();
  if (sim != nullptr && fetch_parallelism > 1 && extents.size() > 1) {
    sim::Semaphore gate(sim, fetch_parallelism);
    std::vector<sim::Async<void>> fetches;
    fetches.reserve(extents.size());
    for (size_t e = 0; e < extents.size(); ++e) {
      fetches.push_back([](FileReader* self, sim::Semaphore* g, Extent* ext,
                           const std::vector<size_t>* ks,
                           const std::vector<int>* cols,
                           const RowGroupMeta* meta,
                           const std::vector<uint8_t>* kb,
                           std::vector<std::vector<uint8_t>>* out,
                           std::vector<std::optional<Column>>* dec,
                           Status* err, uint64_t span) -> sim::Async<void> {
        co_await g->Acquire();
        co_await self->FetchExtent(ext, *ks, *cols, *meta, *kb, out, dec,
                                   err, span);
        g->Release();
      }(this, &gate, &extents[e], &extent_chunks[e], &columns, &rg_meta,
        &keep_bytes, &chunk_data, &decoded, &fetch_error, trace_span));
    }
    co_await sim::WhenAllVoid(sim, std::move(fetches));
  } else {
    for (size_t e = 0; e < extents.size(); ++e) {
      co_await FetchExtent(&extents[e], extent_chunks[e], columns, rg_meta,
                           keep_bytes, &chunk_data, &decoded, &fetch_error,
                           trace_span);
      if (!fetch_error.ok()) break;
    }
  }
  if (!fetch_error.ok()) co_return fetch_error;

  auto proj_schema =
      std::make_shared<engine::Schema>(metadata_.schema.Project(columns));
  std::vector<bool> keep(num_rows, true);
  size_t dropped = 0;

  // ---- Dict-code predicate pass: the flagged columns' sorted
  // dictionaries map each pushed interval to a code range; rows are
  // tested on their codes, and an empty range proves the whole group
  // empty before any materialization.
  uint64_t df_span = 0;
  if (options_.tracer != nullptr &&
      std::find(keep_bytes.begin(), keep_bytes.end(), 1) !=
          keep_bytes.end()) {
    df_span = obs::Begin(options_.tracer, trace_span, "scan", "dict-filter");
  }
  for (size_t k = 0; k < columns.size(); ++k) {
    if (keep_bytes[k] == 0) continue;
    auto it = bounds->find(columns[k]);
    auto view =
        DecodeDictView(chunk_data[k].data(), chunk_data[k].size(), num_rows);
    if (!view.ok()) {
      if (df_span != 0) options_.tracer->EndSpan(df_span);
      co_return view.status();
    }
    co_await options_.cpu.Charge(static_cast<double>(num_rows) * 8.0 / 2e9);
    int64_t lo_i, hi_i;
    uint32_t lo_code = 0, hi_code = 0;
    if (IntIntervalOf(it->second, &lo_i, &hi_i)) {
      lo_code = static_cast<uint32_t>(
          std::lower_bound(view->values.begin(), view->values.end(), lo_i) -
          view->values.begin());
      hi_code = static_cast<uint32_t>(
          std::upper_bound(view->values.begin(), view->values.end(), hi_i) -
          view->values.begin());
    }
    if (lo_code >= hi_code) {
      // No dictionary value intersects the interval: the group is empty.
      rows_dict_filtered_ += static_cast<int64_t>(num_rows);
      if (df_span != 0) {
        options_.tracer->AddArg(df_span, "dropped",
                                static_cast<int64_t>(num_rows));
        options_.tracer->EndSpan(df_span);
      }
      co_return TableChunk::Empty(proj_schema);
    }
    for (size_t row = 0; row < num_rows; ++row) {
      uint32_t code = view->codes[row];
      if ((code < lo_code || code >= hi_code) && keep[row]) {
        keep[row] = false;
        ++dropped;
      }
    }
    decoded[k] = MaterializeDictView(*view);
  }
  if (df_span != 0) {
    options_.tracer->AddArg(df_span, "dropped",
                            static_cast<int64_t>(dropped));
    options_.tracer->EndSpan(df_span);
  }

  std::vector<Column> cols;
  cols.reserve(columns.size());
  for (auto& c : decoded) cols.push_back(*std::move(c));
  TableChunk chunk(proj_schema, std::move(cols));
  if (dropped > 0) {
    rows_dict_filtered_ += static_cast<int64_t>(dropped);
    chunk = chunk.Filter(keep);
  }
  co_return chunk;
}

}  // namespace lambada::format
