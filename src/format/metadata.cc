#include "format/metadata.h"

#include <algorithm>

#include "common/binio.h"

namespace lambada::format {

using engine::Column;
using engine::DataType;

ColumnStats ColumnStats::Compute(const Column& column) {
  ColumnStats s;
  if (column.size() == 0) return s;
  s.valid = true;
  if (column.type() == DataType::kInt64) {
    const auto& v = column.i64();
    auto [mn, mx] = std::minmax_element(v.begin(), v.end());
    s.min_i64 = *mn;
    s.max_i64 = *mx;
  } else {
    const auto& v = column.f64();
    auto [mn, mx] = std::minmax_element(v.begin(), v.end());
    s.min_f64 = *mn;
    s.max_f64 = *mx;
  }
  return s;
}

uint64_t RowGroupMeta::ProjectedBytes(
    const std::vector<int>& columns_subset) const {
  uint64_t total = 0;
  for (int c : columns_subset) {
    total += columns[static_cast<size_t>(c)].compressed_size;
  }
  return total;
}

std::vector<uint8_t> FileMetadata::Serialize() const {
  BinaryWriter w;
  w.PutU8(1);  // Footer format version.
  w.PutVarint(schema.num_fields());
  for (const auto& f : schema.fields()) {
    w.PutString(f.name);
    w.PutU8(static_cast<uint8_t>(f.type));
  }
  w.PutU64(num_rows);
  w.PutVarint(row_groups.size());
  for (const auto& rg : row_groups) {
    w.PutU64(rg.num_rows);
    LAMBADA_CHECK_EQ(rg.columns.size(), schema.num_fields());
    for (size_t c = 0; c < rg.columns.size(); ++c) {
      const auto& cc = rg.columns[c];
      w.PutU64(cc.offset);
      w.PutU64(cc.compressed_size);
      w.PutU64(cc.uncompressed_size);
      w.PutU8(static_cast<uint8_t>(cc.encoding));
      w.PutU8(static_cast<uint8_t>(cc.codec));
      w.PutU8(cc.stats.valid ? 1 : 0);
      if (cc.stats.valid) {
        if (schema.field(c).type == DataType::kInt64) {
          w.PutI64(cc.stats.min_i64);
          w.PutI64(cc.stats.max_i64);
        } else {
          w.PutF64(cc.stats.min_f64);
          w.PutF64(cc.stats.max_f64);
        }
      }
    }
  }
  return w.Take();
}

Result<FileMetadata> FileMetadata::Parse(const uint8_t* data, size_t size) {
  BinaryReader r(data, size);
  ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != 1) return Status::IOError("unsupported footer version");
  ASSIGN_OR_RETURN(uint64_t num_fields, r.GetVarint());
  if (num_fields > 100000) return Status::IOError("implausible field count");
  std::vector<engine::Field> fields;
  fields.reserve(num_fields);
  for (uint64_t i = 0; i < num_fields; ++i) {
    ASSIGN_OR_RETURN(std::string name, r.GetString());
    ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    if (type > 1) return Status::IOError("unknown data type in footer");
    fields.push_back(engine::Field{name, static_cast<DataType>(type)});
  }
  FileMetadata meta;
  meta.schema = engine::Schema(std::move(fields));
  ASSIGN_OR_RETURN(meta.num_rows, r.GetU64());
  ASSIGN_OR_RETURN(uint64_t num_rgs, r.GetVarint());
  if (num_rgs > 10000000) return Status::IOError("implausible row groups");
  meta.row_groups.reserve(num_rgs);
  for (uint64_t g = 0; g < num_rgs; ++g) {
    RowGroupMeta rg;
    ASSIGN_OR_RETURN(rg.num_rows, r.GetU64());
    rg.columns.reserve(num_fields);
    for (uint64_t c = 0; c < num_fields; ++c) {
      ColumnChunkMeta cc;
      ASSIGN_OR_RETURN(cc.offset, r.GetU64());
      ASSIGN_OR_RETURN(cc.compressed_size, r.GetU64());
      ASSIGN_OR_RETURN(cc.uncompressed_size, r.GetU64());
      ASSIGN_OR_RETURN(uint8_t enc, r.GetU8());
      if (enc > kMaxEncoding) {
        return Status::IOError("unknown encoding in footer");
      }
      cc.encoding = static_cast<Encoding>(enc);
      ASSIGN_OR_RETURN(uint8_t codec, r.GetU8());
      if (codec > 3) return Status::IOError("unknown codec in footer");
      cc.codec = static_cast<compress::CodecId>(codec);
      ASSIGN_OR_RETURN(uint8_t has_stats, r.GetU8());
      if (has_stats != 0) {
        cc.stats.valid = true;
        if (meta.schema.field(c).type == DataType::kInt64) {
          ASSIGN_OR_RETURN(cc.stats.min_i64, r.GetI64());
          ASSIGN_OR_RETURN(cc.stats.max_i64, r.GetI64());
        } else {
          ASSIGN_OR_RETURN(cc.stats.min_f64, r.GetF64());
          ASSIGN_OR_RETURN(cc.stats.max_f64, r.GetF64());
        }
      }
      rg.columns.push_back(cc);
    }
    meta.row_groups.push_back(std::move(rg));
  }
  if (r.remaining() != 0) return Status::IOError("footer has trailing bytes");
  return meta;
}

}  // namespace lambada::format
