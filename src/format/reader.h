#ifndef LAMBADA_FORMAT_READER_H_
#define LAMBADA_FORMAT_READER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "format/metadata.h"
#include "format/source.h"
#include "sim/async.h"

namespace lambada::format {

/// Bridge from real work done by the reader (decompressing, decoding) to
/// the simulated worker CPU. `compute` charges vCPU-seconds of virtual
/// time; `scale` inflates the work for virtually-scaled datasets.
/// Host-side tools leave `compute` unset.
struct ComputeHook {
  std::function<sim::Async<void>(double vcpu_seconds)> compute;
  double scale = 1.0;

  sim::Async<void> Charge(double vcpu_seconds) const {
    if (compute && vcpu_seconds > 0) {
      return compute(vcpu_seconds * scale);
    }
    return Noop();
  }

 private:
  static sim::Async<void> Noop() { co_return; }
};

struct ReaderOptions {
  /// Tail bytes fetched speculatively to bootstrap the footer; one request
  /// suffices when the footer fits (it nearly always does).
  int64_t footer_probe_bytes = 64 * 1024;
  ComputeHook cpu;
  /// Required for concurrent column-chunk fetches; when null, fetches are
  /// sequential (host-side tools).
  sim::Simulator* sim = nullptr;
};

/// Reads .lpq files: one tail read for the footer, then one ranged read per
/// projected column chunk — the request pattern of the paper's Parquet scan
/// (Figure 8). Decompression charges CPU through the ComputeHook.
class FileReader {
 public:
  /// Opens the file: fetches and parses the footer.
  static sim::Async<Result<std::shared_ptr<FileReader>>> Open(
      std::shared_ptr<RandomAccessSource> source,
      ReaderOptions options = {});

  const FileMetadata& metadata() const { return metadata_; }
  const engine::SchemaPtr& schema() const { return schema_; }
  int num_row_groups() const {
    return static_cast<int>(metadata_.row_groups.size());
  }

  /// Reads and decodes the given columns (by index) of row group `rg`.
  /// Column chunks are fetched with up to `fetch_parallelism` concurrent
  /// reads — concurrency level (2) of Section 4.3.2.
  sim::Async<Result<engine::TableChunk>> ReadRowGroup(
      int rg, std::vector<int> columns, int fetch_parallelism = 1);

 private:
  FileReader(std::shared_ptr<RandomAccessSource> source,
             ReaderOptions options, FileMetadata metadata)
      : source_(std::move(source)),
        options_(std::move(options)),
        metadata_(std::move(metadata)),
        schema_(std::make_shared<engine::Schema>(metadata_.schema)) {}

  sim::Async<Result<engine::Column>> ReadColumnChunk(int rg, int column);

  std::shared_ptr<RandomAccessSource> source_;
  ReaderOptions options_;
  FileMetadata metadata_;
  engine::SchemaPtr schema_;
};

}  // namespace lambada::format

#endif  // LAMBADA_FORMAT_READER_H_
