#ifndef LAMBADA_FORMAT_READER_H_
#define LAMBADA_FORMAT_READER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "format/metadata.h"
#include "format/source.h"
#include "obs/trace.h"
#include "sim/async.h"

namespace lambada::format {

/// Bridge from real work done by the reader (decompressing, decoding) to
/// the simulated worker CPU. `compute` charges vCPU-seconds of virtual
/// time; `scale` inflates the work for virtually-scaled datasets.
/// Host-side tools leave `compute` unset.
struct ComputeHook {
  std::function<sim::Async<void>(double vcpu_seconds)> compute;
  double scale = 1.0;

  sim::Async<void> Charge(double vcpu_seconds) const {
    if (compute && vcpu_seconds > 0) {
      return compute(vcpu_seconds * scale);
    }
    return Noop();
  }

 private:
  static sim::Async<void> Noop() { co_return; }
};

struct ReaderOptions {
  /// Tail bytes fetched speculatively to bootstrap the footer; one request
  /// suffices when the footer fits (it nearly always does).
  int64_t footer_probe_bytes = 64 * 1024;
  ComputeHook cpu;
  /// Required for concurrent column-chunk fetches; when null, fetches are
  /// sequential (host-side tools).
  sim::Simulator* sim = nullptr;
  /// Row-group IO coalescing budget: a projected column chunk merges into
  /// the preceding read when doing so grows that read by at most this
  /// many bytes (the skipped hole plus the chunk itself). At S3-class
  /// first-byte latencies, transferring up to ~1 MiB extra is cheaper
  /// than another request round trip — but only for latency-dominated
  /// (small) chunks; a large chunk keeps its own read so concurrent
  /// fetches still overlap its transfer. 0 disables coalescing (one read
  /// per chunk). The scan scales this down for virtually-scaled objects.
  int64_t coalesce_gap_bytes = 1024 * 1024;
  /// Optional tracing sink: ReadRowGroup emits per-extent "get"/"decode"
  /// and "dict-filter" child spans under the span id the caller passes.
  obs::Tracer* tracer = nullptr;
};

/// Closed value interval [lo, hi] a column's rows must intersect to
/// survive the scan's filter (mirrors engine::Interval, kept separate so
/// the format layer does not depend on the expression engine). Used by
/// ReadRowGroup to evaluate the bound directly on dictionary codes.
struct ColumnBound {
  double lo = 0;
  double hi = 0;
};

/// Reads .lpq files: one tail read for the footer, then one ranged read per
/// projected column chunk — the request pattern of the paper's Parquet scan
/// (Figure 8). Decompression charges CPU through the ComputeHook.
class FileReader {
 public:
  /// Opens the file: fetches and parses the footer.
  static sim::Async<Result<std::shared_ptr<FileReader>>> Open(
      std::shared_ptr<RandomAccessSource> source,
      ReaderOptions options = {});

  const FileMetadata& metadata() const { return metadata_; }
  const engine::SchemaPtr& schema() const { return schema_; }
  int num_row_groups() const {
    return static_cast<int>(metadata_.row_groups.size());
  }

  /// Reads and decodes the given columns (by index) of row group `rg`.
  /// Small adjacent column chunks coalesce into extents
  /// (ReaderOptions::coalesce_gap_bytes); extents are fetched with up to
  /// `fetch_parallelism` concurrent reads — concurrency level (2) of
  /// Section 4.3.2.
  ///
  /// `bounds` (optional, keyed by file-schema column index) pushes the
  /// scan's per-column value intervals into the decode: a kDict chunk's
  /// sorted dictionary maps each interval to a contiguous code range, so
  /// rows are tested on their small integer codes before materialization
  /// and non-qualifying rows never reach the residual filter. Bounds are
  /// conservative (rows outside an interval cannot satisfy the filter),
  /// so pre-filtering here never changes query results; columns that are
  /// not dict-encoded ignore their bound. Dropped rows accumulate in
  /// rows_dict_filtered().
  ///
  /// `trace_span` (with ReaderOptions::tracer set) parents the read's
  /// extent-GET/decode/dict-filter spans — typically the scan's per-row-
  /// group span.
  sim::Async<Result<engine::TableChunk>> ReadRowGroup(
      int rg, std::vector<int> columns, int fetch_parallelism = 1,
      const std::map<int, ColumnBound>* bounds = nullptr,
      uint64_t trace_span = 0);

  /// Bytes fetched from the source so far (footer probe + data extents,
  /// including coalescing gap bytes) — the file's real bytes moved.
  int64_t bytes_fetched() const { return bytes_fetched_; }
  /// Rows dropped by dictionary-code predicate evaluation.
  int64_t rows_dict_filtered() const { return rows_dict_filtered_; }

 private:
  /// One ranged read covering one or more coalesced column chunks.
  struct Extent {
    uint64_t begin = 0;
    uint64_t end = 0;
    BufferPtr data;
  };

  FileReader(std::shared_ptr<RandomAccessSource> source,
             ReaderOptions options, FileMetadata metadata)
      : source_(std::move(source)),
        options_(std::move(options)),
        metadata_(std::move(metadata)),
        schema_(std::make_shared<engine::Schema>(metadata_.schema)) {}

  /// Decompresses one column chunk's bytes and charges the codec CPU.
  sim::Async<Result<std::vector<uint8_t>>> DecompressChunk(
      const ColumnChunkMeta& cc, const uint8_t* raw, size_t raw_size);

  /// Fetches one extent and immediately decompresses AND decodes the
  /// chunks it covers (projection positions `chunk_positions`), so both
  /// codec and decode CPU overlap the other extents' transfers. Columns
  /// flagged in `keep_bytes` (dict chunks awaiting code-range predicate
  /// evaluation) stop at decompressed bytes in `chunk_data`; the rest
  /// decode straight into `decoded`. The raw extent buffer is freed
  /// afterwards; the first error lands in `error`.
  sim::Async<void> FetchExtent(Extent* extent,
                               const std::vector<size_t>& chunk_positions,
                               const std::vector<int>& columns,
                               const RowGroupMeta& rg_meta,
                               const std::vector<uint8_t>& keep_bytes,
                               std::vector<std::vector<uint8_t>>* chunk_data,
                               std::vector<std::optional<engine::Column>>*
                                   decoded,
                               Status* error, uint64_t trace_span);

  std::shared_ptr<RandomAccessSource> source_;
  ReaderOptions options_;
  FileMetadata metadata_;
  engine::SchemaPtr schema_;
  int64_t bytes_fetched_ = 0;
  int64_t rows_dict_filtered_ = 0;
};

}  // namespace lambada::format

#endif  // LAMBADA_FORMAT_READER_H_
