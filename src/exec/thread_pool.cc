#include "exec/thread_pool.h"

#include <algorithm>

namespace lambada::exec {

namespace {
// Pool threads remember which deque is theirs so Submit from inside a task
// goes to the local deque (LIFO fast path) and stealing skips it first.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local size_t tls_index = 0;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  queues_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t q;
  if (tls_pool == this) {
    q = tls_index;  // Pool thread: local push.
  } else {
    q = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    // Publish under idle_mu_ so a worker between its failed scan and its
    // cv wait cannot miss the increment (lost-wakeup protection). The
    // increment must precede the push: a worker that pops the task
    // decrements pending_, and popping after the increment is what keeps
    // the counter from wrapping below zero. A woken worker may scan once
    // before the push lands and retry — brief, bounded, and benign.
    std::lock_guard<std::mutex> lock(idle_mu_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  idle_cv_.notify_one();
}

bool ThreadPool::PopFrom(size_t q, bool own, std::function<void()>* task) {
  Queue& queue = *queues_[q];
  std::lock_guard<std::mutex> lock(queue.mu);
  if (queue.tasks.empty()) return false;
  if (own) {
    *task = std::move(queue.tasks.back());  // LIFO on the own deque.
    queue.tasks.pop_back();
  } else {
    *task = std::move(queue.tasks.front());  // FIFO when stealing.
    queue.tasks.pop_front();
  }
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::TryRunTask(size_t home) {
  std::function<void()> task;
  if (!PopFrom(home, /*own=*/true, &task)) {
    bool stolen = false;
    for (size_t k = 1; k < queues_.size() && !stolen; ++k) {
      stolen = PopFrom((home + k) % queues_.size(), /*own=*/false, &task);
    }
    if (!stolen) return false;
  }
  task();
  return true;
}

bool ThreadPool::RunOneTask() {
  size_t home = tls_pool == this
                    ? tls_index
                    : next_queue_.load(std::memory_order_relaxed) %
                          queues_.size();
  return TryRunTask(home);
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_pool = this;
  tls_index = self;
  while (true) {
    if (TryRunTask(self)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace lambada::exec
