#ifndef LAMBADA_EXEC_REQUEST_BATCHER_H_
#define LAMBADA_EXEC_REQUEST_BATCHER_H_

#include <functional>
#include <utility>
#include <vector>

#include "exec/exec_context.h"
#include "sim/async.h"
#include "sim/simulator.h"

namespace lambada::exec {

/// Fans out simulated object-store requests (PUT/GET/LIST coroutines)
/// with a bounded number in flight.
///
/// Requests are *started* strictly in slot order — the FIFO semaphore
/// grants slot i+1 only after an earlier slot releases — and results land
/// in slot order regardless of completion order, so callers that merge
/// results by slot are schedule-independent. Retry and backoff come from
/// the thunks themselves: exchange callers wrap cloud::S3Client, whose
/// every verb already retries retriable failures with exponential backoff.
///
/// depth == 1 is special-cased to a plain sequential await loop: the
/// virtual-time schedule (and therefore every latency RNG draw) is
/// bit-identical to pre-batcher code, which keeps the committed
/// sim-deterministic BENCH_*.json figures stable.
class RequestBatcher {
 public:
  RequestBatcher(sim::Simulator* sim, int depth)
      : sim_(sim), depth_(depth < 1 ? 1 : depth) {}

  int depth() const { return depth_; }

  /// Runs all thunks, at most `depth` in flight; returns results in slot
  /// order once every request has completed.
  template <typename T>
  sim::Async<std::vector<T>> Run(
      std::vector<std::function<sim::Async<T>()>> thunks) {
    if (depth_ <= 1) {
      std::vector<T> results;
      results.reserve(thunks.size());
      for (auto& thunk : thunks) {
        results.push_back(co_await thunk());
      }
      co_return results;
    }
    // The gate lives on this frame: WhenAll completes only after every
    // gated task has finished, so nothing touches it after resume.
    sim::Semaphore gate(sim_, depth_);
    std::vector<sim::Async<T>> tasks;
    tasks.reserve(thunks.size());
    for (auto& thunk : thunks) {
      // Creation order is slot order; the FIFO semaphore then guarantees
      // requests are issued in slot order too.
      tasks.push_back(Gated<T>(&gate, std::move(thunk)));
    }
    co_return co_await sim::WhenAll(sim_, std::move(tasks));
  }

 private:
  template <typename T>
  static sim::Async<T> Gated(sim::Semaphore* gate,
                             std::function<sim::Async<T>()> thunk) {
    co_await gate->Acquire();
    T result = co_await thunk();
    gate->Release();
    co_return result;
  }

  sim::Simulator* sim_;
  int depth_;
};

}  // namespace lambada::exec

#endif  // LAMBADA_EXEC_REQUEST_BATCHER_H_
