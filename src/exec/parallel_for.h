#ifndef LAMBADA_EXEC_PARALLEL_FOR_H_
#define LAMBADA_EXEC_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/exec_context.h"
#include "exec/thread_pool.h"

namespace lambada::exec {

/// Morsel-driven loops over row ranges.
///
/// A range [begin, end) is cut into fixed morsels of ctx.morsel_rows rows;
/// workers self-schedule morsels off a shared cursor (the classic
/// morsel-driven design: scheduling is dynamic, data placement is not).
/// Determinism contract: morsel boundaries depend only on the range and
/// ctx.morsel_rows, so any kernel that writes through its morsel index —
/// or folds per-morsel results in morsel order, as ParallelReduce does —
/// produces bit-identical output for every thread count, including 1.

/// Number of morsels ParallelFor will cut [0, n) into.
inline size_t NumMorsels(const ExecContext& ctx, size_t n) {
  size_t morsel = static_cast<size_t>(std::max<int64_t>(1, ctx.morsel_rows));
  return n == 0 ? 0 : (n + morsel - 1) / morsel;
}

namespace internal {

/// Runs body(morsel_index, morsel_begin, morsel_end) for every morsel of
/// [begin, end), on the calling thread alone or with pool help. The caller
/// always participates, so progress never depends on free pool threads.
template <typename Body>
void RunMorsels(const ExecContext& ctx, size_t begin, size_t end,
                const Body& body) {
  if (begin >= end) return;
  const size_t morsel =
      static_cast<size_t>(std::max<int64_t>(1, ctx.morsel_rows));
  const size_t n = end - begin;
  const size_t num_morsels = (n + morsel - 1) / morsel;

  auto run_one = [&](size_t m) {
    size_t b = begin + m * morsel;
    size_t e = std::min(end, b + morsel);
    body(m, b, e);
  };

  if (!ctx.parallel() || num_morsels <= 1) {
    for (size_t m = 0; m < num_morsels; ++m) run_one(m);
    return;
  }

  ThreadPool& pool = ctx.pool != nullptr ? *ctx.pool : ThreadPool::Shared();
  struct Shared {
    std::atomic<size_t> cursor{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t exited = 0;
  } state;
  auto worker = [&state, &run_one, num_morsels] {
    while (true) {
      size_t m = state.cursor.fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) break;
      run_one(m);
    }
  };

  const size_t helpers = static_cast<size_t>(std::min<int64_t>(
      std::max(1, ctx.num_threads) - 1,
      static_cast<int64_t>(num_morsels) - 1));
  for (size_t i = 0; i < helpers; ++i) {
    pool.Submit([&state, worker] {
      worker();
      // Notify under the lock: the caller may destroy `state` the moment
      // it observes the final exit, so nothing may touch it afterwards.
      std::lock_guard<std::mutex> lock(state.mu);
      ++state.exited;
      state.cv.notify_all();
    });
  }
  worker();  // The caller claims morsels too.
  // Helping wait: a queued helper may never get a pool thread (every pool
  // thread can itself be a caller stuck here, e.g. under nested
  // ParallelFor), so run pool tasks while waiting instead of blocking.
  // Once RunOneTask finds every queue empty, all helpers have been
  // claimed by some thread, and the plain wait below cannot miss the
  // final notify (exited is published under state.mu).
  while (true) {
    {
      std::unique_lock<std::mutex> lock(state.mu);
      if (state.exited == helpers) return;
    }
    if (pool.RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state.mu);
    state.cv.wait(lock,
                  [&state, helpers] { return state.exited == helpers; });
    return;
  }
}

}  // namespace internal

/// Applies fn to every morsel of [begin, end). fn is either
/// fn(size_t morsel_begin, size_t morsel_end) or
/// fn(size_t morsel_index, size_t morsel_begin, size_t morsel_end).
template <typename Fn>
void ParallelFor(const ExecContext& ctx, size_t begin, size_t end,
                 const Fn& fn) {
  if constexpr (std::is_invocable_v<const Fn&, size_t, size_t, size_t>) {
    internal::RunMorsels(ctx, begin, end, fn);
  } else {
    internal::RunMorsels(ctx, begin, end,
                         [&fn](size_t, size_t b, size_t e) { fn(b, e); });
  }
}

/// Runs fn(i) for every i in [0, n) as one-element morsels: task-level
/// parallelism for heterogeneous units (chunks, columns, codec blocks)
/// where row-granularity morsels make no sense. Same determinism contract
/// as ParallelFor — callers write through their task index.
template <typename Fn>
void ParallelForEach(const ExecContext& ctx, size_t n, const Fn& fn) {
  ExecContext per_item = ctx;
  per_item.morsel_rows = 1;
  internal::RunMorsels(per_item, 0, n,
                       [&fn](size_t, size_t b, size_t e) {
                         for (size_t i = b; i < e; ++i) fn(i);
                       });
}

/// Maps every morsel of [begin, end) through map(morsel_begin, morsel_end)
/// -> T, then folds the per-morsel values **in morsel order** with
/// combine(accumulated, value). The fold order is what makes the result
/// (floating-point included) independent of the thread count.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(const ExecContext& ctx, size_t begin, size_t end, T init,
                 const MapFn& map, const CombineFn& combine) {
  size_t n = begin < end ? end - begin : 0;
  std::vector<T> partials(NumMorsels(ctx, n), init);
  internal::RunMorsels(ctx, begin, end,
                       [&partials, &map](size_t m, size_t b, size_t e) {
                         partials[m] = map(b, e);
                       });
  T acc = std::move(init);
  for (auto& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace lambada::exec

#endif  // LAMBADA_EXEC_PARALLEL_FOR_H_
