#ifndef LAMBADA_EXEC_THREAD_POOL_H_
#define LAMBADA_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lambada::exec {

/// Work-stealing thread pool for worker-local compute kernels.
///
/// Each pool thread owns a deque: it pushes and pops its own work LIFO
/// (cache-friendly for recursive splits) and steals FIFO from victims when
/// its deque runs dry. External submitters distribute round-robin.
///
/// The pool carries no ordering guarantees on purpose: every kernel built
/// on top (ParallelFor, ParallelReduce) writes results into
/// caller-preallocated, morsel-indexed slots, so the *output* of a kernel
/// is deterministic even though the *schedule* is not. Pool threads must
/// never touch the simulator: virtual time is single-threaded, and the
/// kernels only ever hand the pool pure data transforms.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(queues_.size()); }

  /// Enqueues a task. Callable from any thread, including pool threads
  /// (which push onto their own deque).
  void Submit(std::function<void()> task);

  /// Runs one queued task if any is available, returning whether it did.
  /// Callers waiting on a subset of tasks use this to help instead of
  /// blocking, so a pool saturated with parents waiting on children can
  /// not deadlock.
  bool RunOneTask();

  /// Process-wide pool sized to the hardware, created on first use. Used
  /// whenever an ExecContext asks for parallelism without providing its
  /// own pool.
  static ThreadPool& Shared();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  bool TryRunTask(size_t home);
  bool PopFrom(size_t q, bool own, std::function<void()>* task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace lambada::exec

#endif  // LAMBADA_EXEC_THREAD_POOL_H_
