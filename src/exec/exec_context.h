#ifndef LAMBADA_EXEC_EXEC_CONTEXT_H_
#define LAMBADA_EXEC_EXEC_CONTEXT_H_

#include <cstdint>

namespace lambada::exec {

class ThreadPool;

/// Per-worker execution knobs for the morsel-driven runtime.
///
/// The default context is strictly serial (one thread, depth-1 I/O): every
/// kernel then runs inline on the calling thread and every batched request
/// sequence degenerates to the sequential schedule. This is what keeps the
/// committed sim-deterministic BENCH_*.json figures stable — parallelism
/// is opt-in per worker, and by construction changes neither kernel output
/// bytes nor (at io_depth 1) virtual-time request schedules.
struct ExecContext {
  /// Worker-local kernel threads. <= 1 means run inline, no pool involved.
  int num_threads = 1;

  /// Rows per morsel for ParallelFor/ParallelReduce. Morsel boundaries are
  /// a function of (range, morsel_rows) only — never of the thread count —
  /// so per-morsel results, and anything folded from them in morsel order,
  /// are identical for 1, 2, or 64 threads.
  int64_t morsel_rows = 16 * 1024;

  /// Bound on in-flight object-store requests fanned out by a
  /// RequestBatcher. 1 reproduces the sequential request schedule exactly.
  int io_depth = 1;

  /// Pool to run on; nullptr uses ThreadPool::Shared() when
  /// num_threads > 1. Borrowed, never owned.
  ThreadPool* pool = nullptr;

  static ExecContext Serial() { return ExecContext{}; }
  static ExecContext Parallel(int threads, int64_t morsel = 16 * 1024) {
    ExecContext ctx;
    ctx.num_threads = threads;
    ctx.morsel_rows = morsel;
    return ctx;
  }

  bool parallel() const { return num_threads > 1; }
};

}  // namespace lambada::exec

#endif  // LAMBADA_EXEC_EXEC_CONTEXT_H_
