#ifndef LAMBADA_COMPRESS_CODEC_H_
#define LAMBADA_COMPRESS_CODEC_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lambada::compress {

/// Compression codecs available for column chunks, mirroring the paper's
/// distinction between "light-weight" (run-length-class) and "heavy-weight"
/// (GZIP-class) schemes (Section 4.3.2).
enum class CodecId : uint8_t {
  kNone = 0,
  kRle = 1,    ///< Byte-level run-length encoding (light-weight).
  kLz = 2,     ///< LZ77 with a small window (medium).
  kHeavy = 3,  ///< LZ77, large window, exhaustive matching (GZIP-class:
               ///< best ratio, CPU-bound decompression).
};

std::string_view CodecName(CodecId id);
Result<CodecId> CodecFromName(std::string_view name);

/// A compression codec. Implementations are stateless and thread-agnostic.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecId id() const = 0;

  /// Compresses `input`; output is self-contained (carries the sizes it
  /// needs for decompression except the uncompressed size, which the
  /// caller persists). The pointer form lets block-parallel callers
  /// compress slices of a larger buffer without copying them out first.
  virtual std::vector<uint8_t> Compress(const uint8_t* input,
                                        size_t size) const = 0;
  std::vector<uint8_t> Compress(const std::vector<uint8_t>& input) const {
    return Compress(input.data(), input.size());
  }

  /// Decompresses into exactly `uncompressed_size` bytes; fails with
  /// IOError on corruption.
  virtual Result<std::vector<uint8_t>> Decompress(
      const uint8_t* input, size_t input_size,
      size_t uncompressed_size) const = 0;

  /// Relative CPU cost of decompressing one byte of *uncompressed* output,
  /// in vCPU-seconds per byte. Used by the simulation to convert
  /// decompression work into virtual time; calibrated so that heavy
  /// decompression is scan-dominating as in the paper's Q1 (Section 5.2).
  virtual double DecompressCpuSecondsPerByte() const = 0;
};

/// Returns the process-wide codec instance for `id`.
const Codec& GetCodec(CodecId id);

}  // namespace lambada::compress

#endif  // LAMBADA_COMPRESS_CODEC_H_
