#include "compress/codec.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace lambada::compress {

std::string_view CodecName(CodecId id) {
  switch (id) {
    case CodecId::kNone:
      return "none";
    case CodecId::kRle:
      return "rle";
    case CodecId::kLz:
      return "lz";
    case CodecId::kHeavy:
      return "heavy";
  }
  return "unknown";
}

Result<CodecId> CodecFromName(std::string_view name) {
  if (name == "none") return CodecId::kNone;
  if (name == "rle") return CodecId::kRle;
  if (name == "lz") return CodecId::kLz;
  if (name == "heavy") return CodecId::kHeavy;
  return Status::Invalid("unknown codec: " + std::string(name));
}

namespace {

// ---------------------------------------------------------------------------
// None
// ---------------------------------------------------------------------------

class NoneCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kNone; }

  std::vector<uint8_t> Compress(const uint8_t* input,
                                size_t size) const override {
    return std::vector<uint8_t>(input, input + size);
  }

  Result<std::vector<uint8_t>> Decompress(
      const uint8_t* input, size_t input_size,
      size_t uncompressed_size) const override {
    if (input_size != uncompressed_size) {
      return Status::IOError("uncompressed chunk has wrong size");
    }
    return std::vector<uint8_t>(input, input + input_size);
  }

  double DecompressCpuSecondsPerByte() const override { return 1.0 / 4e9; }
};

// ---------------------------------------------------------------------------
// RLE (PackBits-style): light-weight compression
// ---------------------------------------------------------------------------
//
// Control byte c:
//   c in [0, 127]   : copy the next c+1 literal bytes.
//   c in [129, 255] : repeat the next byte 257-c times (run of 2..128).
//   c == 128        : reserved (never emitted).

class RleCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kRle; }

  std::vector<uint8_t> Compress(const uint8_t* input,
                                size_t size) const override {
    std::vector<uint8_t> out;
    out.reserve(size / 2 + 16);
    size_t i = 0;
    const size_t n = size;
    while (i < n) {
      // Measure the run at i.
      size_t run = 1;
      while (i + run < n && input[i + run] == input[i] && run < 128) ++run;
      if (run >= 2) {
        out.push_back(static_cast<uint8_t>(257 - run));
        out.push_back(input[i]);
        i += run;
        continue;
      }
      // Collect literals until the next run of >= 3 (a run of 2 is not
      // worth breaking a literal block for).
      size_t lit_start = i;
      while (i < n && (i - lit_start) < 128) {
        size_t r = 1;
        while (i + r < n && input[i + r] == input[i] && r < 3) ++r;
        if (r >= 3) break;
        ++i;
      }
      size_t lit_len = i - lit_start;
      out.push_back(static_cast<uint8_t>(lit_len - 1));
      out.insert(out.end(), input + lit_start, input + lit_start + lit_len);
    }
    return out;
  }

  Result<std::vector<uint8_t>> Decompress(
      const uint8_t* input, size_t input_size,
      size_t uncompressed_size) const override {
    std::vector<uint8_t> out;
    out.reserve(uncompressed_size);
    size_t i = 0;
    while (i < input_size) {
      uint8_t c = input[i++];
      if (c <= 127) {
        size_t len = static_cast<size_t>(c) + 1;
        if (i + len > input_size) return Status::IOError("rle: truncated");
        out.insert(out.end(), input + i, input + i + len);
        i += len;
      } else if (c >= 129) {
        if (i >= input_size) return Status::IOError("rle: truncated run");
        size_t len = 257 - static_cast<size_t>(c);
        out.insert(out.end(), len, input[i++]);
      } else {
        return Status::IOError("rle: reserved control byte");
      }
      if (out.size() > uncompressed_size) {
        return Status::IOError("rle: output overflow");
      }
    }
    if (out.size() != uncompressed_size) {
      return Status::IOError("rle: output size mismatch");
    }
    return out;
  }

  double DecompressCpuSecondsPerByte() const override { return 1.0 / 1.5e9; }
};

// ---------------------------------------------------------------------------
// LZ77 (LZ4-like block format)
// ---------------------------------------------------------------------------
//
// A sequence is: token byte (hi nibble literal length, lo nibble match
// length - 4; 15 means "extended with 255-saturated continuation bytes"),
// literal bytes, then (unless this is the terminal sequence) a 2-byte
// little-endian match offset >= 1 and the match-length extension bytes.

struct LzParams {
  int window_bits;   // Match window size = 1 << window_bits.
  int chain_depth;   // Hash-chain positions probed per match attempt.
  size_t min_match = 4;
};

void PutExtendedLength(std::vector<uint8_t>* out, size_t len) {
  while (len >= 255) {
    out->push_back(255);
    len -= 255;
  }
  out->push_back(static_cast<uint8_t>(len));
}

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 16;  // 16-bit hash bucket space.
}

std::vector<uint8_t> LzCompress(const uint8_t* input, size_t n,
                                const LzParams& params) {
  std::vector<uint8_t> out;
  out.reserve(n / 2 + 64);
  if (n < 13) {
    // Too small for matches: emit one literal-only sequence.
    size_t lit = n;
    uint8_t token = static_cast<uint8_t>(std::min<size_t>(lit, 15) << 4);
    out.push_back(token);
    if (lit >= 15) PutExtendedLength(&out, lit - 15);
    out.insert(out.end(), input, input + n);
    return out;
  }

  constexpr size_t kHashSize = 1 << 16;
  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> prev(n, -1);
  const size_t window = size_t{1} << params.window_bits;

  size_t i = 0;
  size_t literal_start = 0;
  // Leave room so that 4-byte loads and the terminal literals are safe.
  const size_t match_limit = n - 5;

  auto emit_sequence = [&](size_t lit_start, size_t lit_len, size_t offset,
                           size_t match_len) {
    size_t ml = match_len - 4;
    uint8_t token =
        static_cast<uint8_t>(std::min<size_t>(lit_len, 15) << 4 |
                             std::min<size_t>(ml, 15));
    out.push_back(token);
    if (lit_len >= 15) PutExtendedLength(&out, lit_len - 15);
    out.insert(out.end(), input + lit_start, input + lit_start + lit_len);
    out.push_back(static_cast<uint8_t>(offset & 0xFF));
    out.push_back(static_cast<uint8_t>(offset >> 8));
    if (ml >= 15) PutExtendedLength(&out, ml - 15);
  };

  while (i <= match_limit) {
    // Probe the hash chain for the best match.
    uint32_t h = Hash4(input + i);
    int64_t cand = head[h];
    size_t best_len = 0;
    size_t best_off = 0;
    int depth = params.chain_depth;
    while (cand >= 0 && depth-- > 0) {
      size_t off = i - static_cast<size_t>(cand);
      if (off > window || off > 65535) break;
      const uint8_t* a = input + i;
      const uint8_t* b = input + cand;
      size_t max_len = n - i - 5;  // Keep the terminal literals intact.
      size_t len = 0;
      while (len < max_len && a[len] == b[len]) ++len;
      if (len > best_len) {
        best_len = len;
        best_off = off;
      }
      cand = prev[cand];
    }
    if (best_len >= params.min_match) {
      emit_sequence(literal_start, i - literal_start, best_off, best_len);
      // Insert the match positions into the chains (sparsely for speed).
      size_t end = i + best_len;
      size_t step = best_len > 64 ? 8 : 1;
      for (size_t j = i; j < end && j <= match_limit; j += step) {
        uint32_t hj = Hash4(input + j);
        prev[j] = head[hj];
        head[hj] = static_cast<int64_t>(j);
      }
      i = end;
      literal_start = i;
    } else {
      prev[i] = head[h];
      head[h] = static_cast<int64_t>(i);
      ++i;
    }
  }
  // Terminal literal-only sequence.
  size_t lit = n - literal_start;
  uint8_t token = static_cast<uint8_t>(std::min<size_t>(lit, 15) << 4);
  out.push_back(token);
  if (lit >= 15) PutExtendedLength(&out, lit - 15);
  out.insert(out.end(), input + literal_start, input + n);
  return out;
}

Result<std::vector<uint8_t>> LzDecompress(const uint8_t* input,
                                          size_t input_size,
                                          size_t uncompressed_size) {
  std::vector<uint8_t> out;
  out.reserve(uncompressed_size);
  size_t i = 0;
  auto read_extended = [&](size_t base) -> Result<size_t> {
    size_t len = base;
    if (base == 15) {
      while (true) {
        if (i >= input_size) return Status::IOError("lz: truncated length");
        uint8_t b = input[i++];
        len += b;
        if (b != 255) break;
      }
    }
    return len;
  };
  while (i < input_size) {
    uint8_t token = input[i++];
    ASSIGN_OR_RETURN(size_t lit_len, read_extended(token >> 4));
    if (i + lit_len > input_size) return Status::IOError("lz: truncated");
    out.insert(out.end(), input + i, input + i + lit_len);
    i += lit_len;
    if (i >= input_size) break;  // Terminal sequence.
    if (i + 2 > input_size) return Status::IOError("lz: truncated offset");
    size_t offset = input[i] | (static_cast<size_t>(input[i + 1]) << 8);
    i += 2;
    if (offset == 0 || offset > out.size()) {
      return Status::IOError("lz: invalid match offset");
    }
    ASSIGN_OR_RETURN(size_t ml, read_extended(token & 0x0F));
    size_t match_len = ml + 4;
    // Byte-by-byte copy: matches may overlap themselves.
    size_t src = out.size() - offset;
    for (size_t k = 0; k < match_len; ++k) {
      out.push_back(out[src + k]);
    }
    if (out.size() > uncompressed_size) {
      return Status::IOError("lz: output overflow");
    }
  }
  if (out.size() != uncompressed_size) {
    return Status::IOError("lz: output size mismatch");
  }
  return out;
}

class LzCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kLz; }

  std::vector<uint8_t> Compress(const uint8_t* input,
                                size_t size) const override {
    return LzCompress(input, size, LzParams{/*window_bits=*/14,
                                            /*chain_depth=*/4});
  }

  Result<std::vector<uint8_t>> Decompress(
      const uint8_t* input, size_t input_size,
      size_t uncompressed_size) const override {
    return LzDecompress(input, input_size, uncompressed_size);
  }

  double DecompressCpuSecondsPerByte() const override { return 1.0 / 600e6; }
};

class HeavyCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kHeavy; }

  std::vector<uint8_t> Compress(const uint8_t* input,
                                size_t size) const override {
    // Depth 12 keeps compression tractable on small hosts while staying
    // clearly ahead of the light codec's ratio; the *decompression* CPU
    // model below is what the experiments depend on.
    return LzCompress(input, size, LzParams{/*window_bits=*/16,
                                            /*chain_depth=*/12});
  }

  Result<std::vector<uint8_t>> Decompress(
      const uint8_t* input, size_t input_size,
      size_t uncompressed_size) const override {
    return LzDecompress(input, input_size, uncompressed_size);
  }

  /// GZIP-class decompression throughput of numeric column data:
  /// ~400 MB/s of output per vCPU. Calibrated so that a Q1-style scan of a
  /// 500 MB file is (mildly) CPU-bound and takes ~2.5 s of processing on a
  /// 1-vCPU worker, matching Figure 11.
  double DecompressCpuSecondsPerByte() const override { return 1.0 / 400e6; }
};

}  // namespace

const Codec& GetCodec(CodecId id) {
  static const NoneCodec none;
  static const RleCodec rle;
  static const LzCodec lz;
  static const HeavyCodec heavy;
  switch (id) {
    case CodecId::kNone:
      return none;
    case CodecId::kRle:
      return rle;
    case CodecId::kLz:
      return lz;
    case CodecId::kHeavy:
      return heavy;
  }
  LAMBADA_FATAL() << "unknown codec id";
  return none;
}

}  // namespace lambada::compress
