#ifndef LAMBADA_COMPRESS_BLOCK_CODEC_H_
#define LAMBADA_COMPRESS_BLOCK_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "compress/codec.h"
#include "exec/exec_context.h"

namespace lambada::compress {

/// Framed block-parallel compression on top of any Codec.
///
/// The input is cut into fixed-size blocks that compress and decompress
/// independently, so both directions run morsel-parallel on a worker's
/// ExecContext. Block boundaries depend only on `block_bytes` — never on
/// the thread count — so the frame is bit-identical however many threads
/// produce it. The price is a small per-block header and slightly worse
/// ratios (matches cannot cross block boundaries), which is why the file
/// format keeps whole-column-chunk compression. Today this framing is the
/// codec lane of the parallel-kernel scoreboard (bench_micro_kernels);
/// compressing exchange partition files is the intended future consumer —
/// exchange serde deliberately ships raw bytes for now (write-once data),
/// and flipping that is a modeled-cost decision, not a code seam.
///
/// Frame layout (all varints):
///   block_count, then per block: uncompressed_size, compressed_size,
///   compressed bytes.
struct BlockFrameOptions {
  size_t block_bytes = 256 * 1024;
};

std::vector<uint8_t> CompressBlocks(const Codec& codec,
                                    const std::vector<uint8_t>& input,
                                    const exec::ExecContext& ctx = {},
                                    const BlockFrameOptions& options = {});

Result<std::vector<uint8_t>> DecompressBlocks(const Codec& codec,
                                              const uint8_t* data,
                                              size_t size,
                                              const exec::ExecContext& ctx = {});
inline Result<std::vector<uint8_t>> DecompressBlocks(
    const Codec& codec, const std::vector<uint8_t>& frame,
    const exec::ExecContext& ctx = {}) {
  return DecompressBlocks(codec, frame.data(), frame.size(), ctx);
}

}  // namespace lambada::compress

#endif  // LAMBADA_COMPRESS_BLOCK_CODEC_H_
