#include "compress/block_codec.h"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "common/binio.h"
#include "exec/parallel_for.h"

namespace lambada::compress {

std::vector<uint8_t> CompressBlocks(const Codec& codec,
                                    const std::vector<uint8_t>& input,
                                    const exec::ExecContext& ctx,
                                    const BlockFrameOptions& options) {
  const size_t block = options.block_bytes == 0 ? 1 : options.block_bytes;
  const size_t num_blocks = input.empty() ? 0 : (input.size() + block - 1) / block;

  // Compress blocks in parallel (one task per block), then frame them in
  // block order — the assembly order, not the completion order, defines
  // the output bytes.
  std::vector<std::vector<uint8_t>> compressed(num_blocks);
  exec::ParallelForEach(ctx, num_blocks, [&](size_t i) {
    size_t begin = i * block;
    size_t end = std::min(input.size(), begin + block);
    compressed[i] = codec.Compress(input.data() + begin, end - begin);
  });

  BinaryWriter w;
  w.PutVarint(num_blocks);
  for (size_t i = 0; i < num_blocks; ++i) {
    size_t begin = i * block;
    size_t end = std::min(input.size(), begin + block);
    w.PutVarint(end - begin);
    w.PutVarint(compressed[i].size());
    w.PutRaw(compressed[i].data(), compressed[i].size());
  }
  return w.Take();
}

Result<std::vector<uint8_t>> DecompressBlocks(const Codec& codec,
                                              const uint8_t* data,
                                              size_t size,
                                              const exec::ExecContext& ctx) {
  BinaryReader r(data, size);
  ASSIGN_OR_RETURN(uint64_t num_blocks, r.GetVarint());
  // Every block contributes at least two varint bytes to the frame, so a
  // count beyond size/2 is corrupt — and bounding it here keeps the
  // reserve below from amplifying a crafted count into a giant
  // allocation.
  if (num_blocks > size / 2) {
    return Status::IOError("block frame: implausible block count");
  }
  struct Block {
    const uint8_t* data;
    size_t compressed_size;
    size_t uncompressed_size;
    size_t output_offset;
  };
  std::vector<Block> blocks;
  blocks.reserve(num_blocks);
  // Size caps: a legitimate block never exceeds the writer's block_bytes,
  // and none of our codecs expands by more than ~256x (LZ extended
  // lengths add <= 255 per byte). A generous bound on both keeps a
  // crafted frame from overflowing `total` or driving a giant allocation
  // out of this Result-returning API.
  constexpr uint64_t kMaxBlockBytes = uint64_t{1} << 30;
  constexpr uint64_t kMaxTotalBytes = uint64_t{1} << 34;
  size_t total = 0;
  for (uint64_t i = 0; i < num_blocks; ++i) {
    ASSIGN_OR_RETURN(uint64_t uncompressed, r.GetVarint());
    ASSIGN_OR_RETURN(uint64_t compressed, r.GetVarint());
    if (compressed > r.remaining()) {
      return Status::IOError("block frame: truncated block");
    }
    if (uncompressed > kMaxBlockBytes ||
        uncompressed > compressed * 1024 + 16) {
      return Status::IOError("block frame: implausible block size");
    }
    if (total + uncompressed > kMaxTotalBytes) {
      return Status::IOError("block frame: implausible frame size");
    }
    blocks.push_back(Block{data + r.position(), compressed, uncompressed,
                           total});
    total += uncompressed;
    RETURN_NOT_OK(r.Skip(compressed));
  }
  if (r.remaining() != 0) {
    return Status::IOError("block frame: trailing bytes");
  }

  std::vector<uint8_t> out(total);
  std::vector<Status> statuses(blocks.size(), Status::OK());
  exec::ParallelForEach(ctx, blocks.size(), [&](size_t i) {
    const Block& blk = blocks[i];
    auto bytes = codec.Decompress(blk.data, blk.compressed_size,
                                  blk.uncompressed_size);
    if (!bytes.ok()) {
      statuses[i] = bytes.status();
      return;
    }
    std::memcpy(out.data() + blk.output_offset, bytes->data(),
                bytes->size());
  });
  for (const auto& s : statuses) {
    RETURN_NOT_OK(s);
  }
  return out;
}

}  // namespace lambada::compress
