#ifndef LAMBADA_SIM_RESOURCES_H_
#define LAMBADA_SIM_RESOURCES_H_

#include <coroutine>
#include <cstdint>
#include <list>
#include <memory>

#include "sim/async.h"
#include "sim/simulator.h"

namespace lambada::sim {

/// Token bucket with *reservation* semantics for request-rate limits
/// (e.g., S3 per-bucket request rates). ReserveDelay deducts tokens
/// immediately — the balance may go negative, which models a FIFO queue —
/// and returns how long the caller must wait before proceeding.
class TokenBucket {
 public:
  /// `rate`: tokens replenished per second; `burst`: maximum balance.
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst) {}

  /// Reserves `tokens` at time `now`; returns the wait before the
  /// reservation becomes valid (0 when tokens are available).
  double ReserveDelay(Time now, double tokens = 1.0) {
    Refill(now);
    tokens_ -= tokens;
    if (tokens_ >= 0) return 0.0;
    return -tokens_ / rate_;
  }

  /// Current wait a new 1-token reservation would incur (non-mutating).
  double CurrentDelay(Time now, double tokens = 1.0) const {
    double t = tokens_ + (now - last_) * rate_;
    if (t > burst_) t = burst_;
    t -= tokens;
    return t >= 0 ? 0.0 : -t / rate_;
  }

  double rate() const { return rate_; }

 private:
  void Refill(Time now) {
    tokens_ += (now - last_) * rate_;
    if (tokens_ > burst_) tokens_ = burst_;
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  Time last_ = 0;
};

/// Processor-sharing resource modeling the fractional CPU allocation of a
/// serverless function (Section 4.1 / Figure 4 of the paper).
///
/// The resource has total capacity `capacity` (in vCPUs) and each job
/// (thread) can use at most `per_job_cap` (1 vCPU). With n active jobs,
/// each runs at rate min(per_job_cap, capacity / n). `Consume(w)` completes
/// after the job has accumulated `w` vCPU-seconds of service.
class ProcessorSharing {
 public:
  ProcessorSharing(Simulator* sim, double capacity, double per_job_cap = 1.0);
  ~ProcessorSharing();
  ProcessorSharing(const ProcessorSharing&) = delete;
  ProcessorSharing& operator=(const ProcessorSharing&) = delete;

  /// Suspends until `work` vCPU-seconds of service have been delivered.
  Async<void> Consume(double work);

  double capacity() const { return capacity_; }
  int active_jobs() const { return static_cast<int>(jobs_.size()); }
  /// Service rate a single job currently receives.
  double CurrentRatePerJob() const;

 private:
  struct Job {
    double remaining;  // vCPU-seconds outstanding.
    Event done;
    explicit Job(Simulator* sim, double w) : remaining(w), done(sim) {}
  };

  void Advance();     // Applies service since last event time.
  void Reschedule();  // Schedules the next completion event.
  void OnTimer(uint64_t epoch);

  Simulator* sim_;
  double capacity_;
  double per_job_cap_;
  std::list<std::shared_ptr<Job>> jobs_;
  Time last_update_ = 0;
  uint64_t epoch_ = 0;  // Invalidates stale timer events.
};

/// A shared network link with credit-based traffic shaping, modeling the
/// per-function NIC observed in Figures 6a/6b of the paper: sustained
/// ~90 MiB/s, with a burst credit bucket that allows short transfers to
/// reach a higher peak, and a per-connection cap (S3 serves each HTTP
/// connection at ~90 MiB/s).
class SharedLink {
 public:
  struct Config {
    double sustained_bps;     ///< Long-run bandwidth (bytes/s).
    double peak_bps;          ///< Burst bandwidth while credits last.
    double credit_bytes;      ///< Credit bucket size (bytes above sustained).
    double per_conn_bps;      ///< Per-connection cap (bytes/s).
  };

  SharedLink(Simulator* sim, const Config& config);
  SharedLink(const SharedLink&) = delete;
  SharedLink& operator=(const SharedLink&) = delete;

  /// Transfers `bytes` through the link as one connection; completes when
  /// the last byte has been delivered.
  Async<void> Transfer(double bytes);

  int active_transfers() const { return static_cast<int>(jobs_.size()); }
  double credits() const { return credits_; }

 private:
  struct Job {
    double remaining;
    Event done;
    explicit Job(Simulator* sim, double b) : remaining(b), done(sim) {}
  };

  /// Aggregate throughput (bytes/s) for the current state.
  double Throughput() const;
  void Advance();
  void Reschedule();
  void OnTimer(uint64_t epoch);

  Simulator* sim_;
  Config config_;
  std::list<std::shared_ptr<Job>> jobs_;
  double credits_;
  Time last_update_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace lambada::sim

#endif  // LAMBADA_SIM_RESOURCES_H_
