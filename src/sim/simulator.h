#ifndef LAMBADA_SIM_SIMULATOR_H_
#define LAMBADA_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace lambada::sim {

/// Virtual time in seconds.
using Time = double;

/// Single-threaded discrete-event simulator.
///
/// All simulated activity is expressed as callbacks scheduled at virtual
/// times. Coroutine-based processes (see async.h) are resumed through
/// scheduled callbacks, so the entire simulation is deterministic: events
/// with equal timestamps fire in scheduling order.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time Now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= Now()).
  void ScheduleAt(Time t, std::function<void()> fn) {
    LAMBADA_DCHECK(t >= now_ - 1e-9) << "scheduling into the past";
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after a relative delay `dt` (clamped to >= 0).
  void ScheduleAfter(Time dt, std::function<void()> fn) {
    ScheduleAt(now_ + (dt > 0 ? dt : 0), std::move(fn));
  }

  /// Runs events until the queue is empty. Returns the final time.
  Time Run() {
    while (Step()) {
    }
    return now_;
  }

  /// Runs events with timestamps <= `until`. Later events stay queued and
  /// `Now()` advances to `until`.
  Time RunUntil(Time until) {
    while (!queue_.empty() && queue_.top().time <= until) {
      Step();
    }
    if (now_ < until) now_ = until;
    return now_;
  }

  /// Executes the next event, if any. Returns false when idle.
  bool Step() {
    if (queue_.empty()) return false;
    // Pop before invoking: the callback may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }

  bool empty() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Time time;
    uint64_t seq;  // Tie-breaker: FIFO among equal timestamps.
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace lambada::sim

#endif  // LAMBADA_SIM_SIMULATOR_H_
