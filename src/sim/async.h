#ifndef LAMBADA_SIM_ASYNC_H_
#define LAMBADA_SIM_ASYNC_H_

#include <coroutine>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "sim/simulator.h"

namespace lambada::sim {

/// Lazily-started coroutine returning T, awaitable exactly once.
///
/// `Async<T>` is the unit of simulated activity: a service call, a worker,
/// a download thread. Awaiting an Async starts it (symmetric transfer) and
/// suspends the awaiter until the child completes. Ownership of the
/// coroutine frame lies with the Async object; the frame is destroyed when
/// the Async is destroyed, which must happen only after completion (which
/// is guaranteed when the value was obtained by co_await).
template <typename T>
class [[nodiscard]] Async;

namespace internal {

template <typename Promise>
struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    // Resume whoever awaited us; if detached, just stop (frame freed by
    // the owning Async / Spawn wrapper).
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  void unhandled_exception() { LAMBADA_FATAL() << "exception in coroutine"; }
  std::suspend_always initial_suspend() noexcept { return {}; }
};

}  // namespace internal

template <typename T>
class [[nodiscard]] Async {
 public:
  struct promise_type : internal::PromiseBase {
    std::optional<T> value;
    Async get_return_object() {
      return Async(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    internal::FinalAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Async(Async&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Async& operator=(Async&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Async(const Async&) = delete;
  Async& operator=(const Async&) = delete;
  ~Async() { Destroy(); }

  // Awaiter interface: awaiting starts the child coroutine.
  bool await_ready() const noexcept { return handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  T await_resume() { return std::move(*handle_.promise().value); }

 private:
  explicit Async(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Async<void> {
 public:
  struct promise_type : internal::PromiseBase {
    Async get_return_object() {
      return Async(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    internal::FinalAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void return_void() {}
  };

  Async(Async&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Async& operator=(Async&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Async(const Async&) = delete;
  Async& operator=(const Async&) = delete;
  ~Async() { Destroy(); }

  bool await_ready() const noexcept { return handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {}

 private:
  explicit Async(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

namespace internal {

/// Self-destroying detached coroutine used by Spawn/WhenAll wrappers.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {
      LAMBADA_FATAL() << "exception in detached coroutine";
    }
  };
};

inline DetachedTask SpawnImpl(Async<void> a) { co_await std::move(a); }

}  // namespace internal

/// Runs `a` as a detached process. The coroutine starts immediately (it
/// runs until its first suspension point within the current event).
inline void Spawn(Async<void> a) { internal::SpawnImpl(std::move(a)); }

/// Awaitable that suspends for `dt` virtual seconds.
struct SleepAwaiter {
  Simulator* sim;
  Time dt;
  bool await_ready() const noexcept { return dt <= 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim->ScheduleAfter(dt, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline SleepAwaiter Sleep(Simulator* sim, Time dt) { return {sim, dt}; }

/// Manual-reset event: waiters suspend until Set() is called. Waking is
/// scheduled (not inline) to keep resume stacks shallow and ordering FIFO.
class Event {
 public:
  explicit Event(Simulator* sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void Set() {
    set_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sim_->ScheduleAfter(0, [h] { h.resume(); });
    }
  }

  void Reset() { set_ = false; }
  bool is_set() const { return set_; }

  struct Awaiter {
    Event* event;
    bool await_ready() const noexcept { return event->set_; }
    void await_suspend(std::coroutine_handle<> h) const {
      event->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  Awaiter Wait() { return Awaiter{this}; }

 private:
  Simulator* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

namespace internal {

template <typename T>
struct WhenAllState {
  explicit WhenAllState(Simulator* sim, size_t n)
      : pending(n), done(sim), results(n) {}
  size_t pending;
  Event done;
  std::vector<std::optional<T>> results;
};

template <typename T>
DetachedTask WhenAllRunner(Async<T> task, std::shared_ptr<WhenAllState<T>> st,
                           size_t index) {
  st->results[index].emplace(co_await std::move(task));
  if (--st->pending == 0) st->done.Set();
}

struct WhenAllVoidState {
  explicit WhenAllVoidState(Simulator* sim, size_t n)
      : pending(n), done(sim) {}
  size_t pending;
  Event done;
};

inline DetachedTask WhenAllVoidRunner(Async<void> task,
                                      std::shared_ptr<WhenAllVoidState> st) {
  co_await std::move(task);
  if (--st->pending == 0) st->done.Set();
}

}  // namespace internal

/// Runs all tasks concurrently; completes when every task has completed.
/// Results are returned in input order.
template <typename T>
Async<std::vector<T>> WhenAll(Simulator* sim, std::vector<Async<T>> tasks) {
  auto st =
      std::make_shared<internal::WhenAllState<T>>(sim, tasks.size());
  if (tasks.empty()) st->done.Set();
  for (size_t i = 0; i < tasks.size(); ++i) {
    internal::WhenAllRunner(std::move(tasks[i]), st, i);
  }
  co_await st->done.Wait();
  std::vector<T> out;
  out.reserve(st->results.size());
  for (auto& r : st->results) out.push_back(std::move(*r));
  co_return out;
}

/// void overload of WhenAll.
inline Async<void> WhenAllVoid(Simulator* sim,
                               std::vector<Async<void>> tasks) {
  auto st =
      std::make_shared<internal::WhenAllVoidState>(sim, tasks.size());
  if (tasks.empty()) st->done.Set();
  for (auto& t : tasks) {
    internal::WhenAllVoidRunner(std::move(t), st);
  }
  co_await st->done.Wait();
}

/// Counting semaphore for bounding in-flight concurrency (e.g., the
/// driver's pool of invocation threads). FIFO grant order.
class Semaphore {
 public:
  Semaphore(Simulator* sim, int64_t count) : sim_(sim), count_(count) {}

  struct Awaiter {
    Semaphore* sem;
    bool await_ready() const noexcept {
      if (sem->count_ > 0) {
        --sem->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) const {
      sem->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  Awaiter Acquire() { return Awaiter{this}; }

  void Release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.erase(waiters_.begin());
      sim_->ScheduleAfter(0, [h] { h.resume(); });
    } else {
      ++count_;
    }
  }

  int64_t available() const { return count_; }

 private:
  Simulator* sim_;
  int64_t count_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace lambada::sim

#endif  // LAMBADA_SIM_ASYNC_H_
