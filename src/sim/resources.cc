#include "sim/resources.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lambada::sim {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
// Smallest timer delta we schedule. Deltas below the clock's ULP would
// not advance virtual time at all, re-firing the same event forever; any
// work that would finish within this quantum is completed immediately.
constexpr double kMinTick = 1e-9;
}  // namespace

// ---------------------------------------------------------------------------
// ProcessorSharing
// ---------------------------------------------------------------------------

ProcessorSharing::ProcessorSharing(Simulator* sim, double capacity,
                                   double per_job_cap)
    : sim_(sim), capacity_(capacity), per_job_cap_(per_job_cap) {
  LAMBADA_CHECK_GT(capacity, 0.0);
  LAMBADA_CHECK_GT(per_job_cap, 0.0);
  last_update_ = sim->Now();
}

ProcessorSharing::~ProcessorSharing() {
  LAMBADA_CHECK(jobs_.empty()) << "destroying CPU with active jobs";
}

double ProcessorSharing::CurrentRatePerJob() const {
  if (jobs_.empty()) return std::min(per_job_cap_, capacity_);
  return std::min(per_job_cap_,
                  capacity_ / static_cast<double>(jobs_.size()));
}

void ProcessorSharing::Advance() {
  Time now = sim_->Now();
  double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0 || jobs_.empty()) return;
  double rate = CurrentRatePerJob();
  for (auto& job : jobs_) {
    job->remaining -= rate * dt;
  }
}

void ProcessorSharing::Reschedule() {
  ++epoch_;
  if (jobs_.empty()) return;
  double rate = CurrentRatePerJob();
  double min_remaining = kInf;
  for (const auto& job : jobs_) {
    min_remaining = std::min(min_remaining, job->remaining);
  }
  double dt = std::max(kMinTick, min_remaining / rate);
  uint64_t epoch = epoch_;
  sim_->ScheduleAfter(dt, [this, epoch] { OnTimer(epoch); });
}

void ProcessorSharing::OnTimer(uint64_t epoch) {
  if (epoch != epoch_) return;  // A newer event supersedes this one.
  Advance();
  // Complete anything that would finish within one minimal tick; leaving
  // it active would schedule a sub-ULP delta and freeze virtual time.
  double quantum = CurrentRatePerJob() * kMinTick + kEps;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if ((*it)->remaining <= quantum) {
      (*it)->done.Set();
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  Reschedule();
}

Async<void> ProcessorSharing::Consume(double work) {
  if (work <= 0) co_return;
  Advance();
  auto job = std::make_shared<Job>(sim_, work);
  jobs_.push_back(job);
  Reschedule();
  co_await job->done.Wait();
}

// ---------------------------------------------------------------------------
// SharedLink
// ---------------------------------------------------------------------------

SharedLink::SharedLink(Simulator* sim, const Config& config)
    : sim_(sim), config_(config), credits_(config.credit_bytes) {
  LAMBADA_CHECK_GT(config.sustained_bps, 0.0);
  LAMBADA_CHECK_GE(config.peak_bps, config.sustained_bps);
  LAMBADA_CHECK_GE(config.credit_bytes, 0.0);
  LAMBADA_CHECK_GT(config.per_conn_bps, 0.0);
  last_update_ = sim->Now();
}

double SharedLink::Throughput() const {
  if (jobs_.empty()) return 0.0;
  double n = static_cast<double>(jobs_.size());
  // What the connections could deliver if only per-connection caps and the
  // burst peak applied.
  double desired = std::min(n * config_.per_conn_bps, config_.peak_bps);
  if (credits_ > kEps) return desired;
  // Credits exhausted: the shaper clamps the aggregate to the sustained
  // rate (unless demand is below it anyway).
  return std::min(desired, config_.sustained_bps);
}

void SharedLink::Advance() {
  Time now = sim_->Now();
  double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0) return;
  double throughput = Throughput();
  // Credits refill at the sustained rate and drain with actual throughput.
  credits_ += (config_.sustained_bps - throughput) * dt;
  credits_ = std::clamp(credits_, 0.0, config_.credit_bytes);
  if (jobs_.empty()) return;
  double per_transfer = throughput / static_cast<double>(jobs_.size());
  for (auto& job : jobs_) {
    job->remaining -= per_transfer * dt;
  }
}

void SharedLink::Reschedule() {
  ++epoch_;
  if (jobs_.empty()) return;
  double throughput = Throughput();
  double per_transfer = throughput / static_cast<double>(jobs_.size());
  double min_remaining = kInf;
  for (const auto& job : jobs_) {
    min_remaining = std::min(min_remaining, job->remaining);
  }
  double dt_complete =
      per_transfer > 0 ? min_remaining / per_transfer : kInf;
  // The rates change when the credit bucket empties.
  double drain = throughput - config_.sustained_bps;
  double dt_credits =
      (credits_ > kEps && drain > kEps) ? credits_ / drain : kInf;
  double dt = std::max(kMinTick, std::min(dt_complete, dt_credits));
  LAMBADA_CHECK(dt != kInf) << "link stalled with active transfers";
  uint64_t epoch = epoch_;
  sim_->ScheduleAfter(dt, [this, epoch] { OnTimer(epoch); });
}

void SharedLink::OnTimer(uint64_t epoch) {
  if (epoch != epoch_) return;
  Advance();
  double quantum = kEps;
  if (!jobs_.empty()) {
    quantum += Throughput() / static_cast<double>(jobs_.size()) * kMinTick;
  }
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if ((*it)->remaining <= quantum) {
      (*it)->done.Set();
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  Reschedule();
}

Async<void> SharedLink::Transfer(double bytes) {
  if (bytes <= 0) co_return;
  Advance();
  auto job = std::make_shared<Job>(sim_, bytes);
  jobs_.push_back(job);
  Reschedule();
  co_await job->done.Wait();
}

}  // namespace lambada::sim
